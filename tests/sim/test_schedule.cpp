// Diurnal availability schedule (sim/schedule.h): deterministic periodic
// windows, the next_online/next_offline fixpoint contract, and composition
// with the churn process as an overlay.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/hazard.h"
#include "sim/schedule.h"

namespace seafl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ScheduleConfig config(double period, double fraction, std::uint64_t seed) {
  ScheduleConfig c;
  c.period = period;
  c.online_fraction = fraction;
  c.seed = seed;
  return c;
}

TEST(ScheduleTable, DisabledTableIsAlwaysOnline) {
  const ScheduleTable table;
  EXPECT_FALSE(table.enabled());
  for (const double t : {0.0, 1.5, 1000.0}) {
    EXPECT_TRUE(table.online_at(0, t));
    EXPECT_EQ(table.next_online(0, t), t);
    EXPECT_EQ(table.next_offline(0, t), kInf);
  }
}

TEST(ScheduleTable, FullFractionNeverGoesOffline) {
  const ScheduleTable table(config(10.0, 1.0, 42), 4);
  EXPECT_TRUE(table.enabled());
  for (std::size_t c = 0; c < 4; ++c) {
    for (const double t : {0.0, 3.3, 97.0}) {
      EXPECT_TRUE(table.online_at(c, t));
      EXPECT_EQ(table.next_offline(c, t), kInf);
      EXPECT_EQ(table.next_online(c, t), t);
    }
  }
}

TEST(ScheduleTable, WindowsArePeriodic) {
  const double period = 8.0;
  const ScheduleTable table(config(period, 0.4, 7), 6);
  for (std::size_t c = 0; c < 6; ++c) {
    for (double t = 0.0; t < period; t += 0.37) {
      EXPECT_EQ(table.online_at(c, t), table.online_at(c, t + period))
          << "client " << c << " t " << t;
      EXPECT_EQ(table.online_at(c, t), table.online_at(c, t + 5 * period));
    }
  }
}

TEST(ScheduleTable, OnlineShareMatchesFraction) {
  // Dense sampling of one period: the in-window share must equal the
  // configured fraction for every client (the window is one contiguous arc
  // of the period circle).
  const double period = 10.0;
  const double fraction = 0.5;
  const ScheduleTable table(config(period, fraction, 11), 8);
  for (std::size_t c = 0; c < 8; ++c) {
    int online = 0;
    const int samples = 10000;
    for (int i = 0; i < samples; ++i) {
      const double t = period * static_cast<double>(i) / samples;
      online += table.online_at(c, t) ? 1 : 0;
    }
    const double share = static_cast<double>(online) / samples;
    EXPECT_NEAR(share, fraction, 0.01) << "client " << c;
  }
}

TEST(ScheduleTable, NextOnlineAndOfflineAreConsistent) {
  const double period = 12.0;
  // The computed crossing can sit a few ulps either side of the window
  // edge; probe just past it rather than exactly on it.
  const double eps = 1e-9 * period;
  const ScheduleTable table(config(period, 0.3, 5), 5);
  for (std::size_t c = 0; c < 5; ++c) {
    for (double t = 0.0; t < 40.0; t += 0.77) {
      const double on = table.next_online(c, t);
      const double off = table.next_offline(c, t);
      ASSERT_GE(on, t);
      ASSERT_GE(off, t);
      if (table.online_at(c, t)) {
        EXPECT_EQ(on, t);
        EXPECT_GT(off, t);
        // Exact at the returned instant (the crossing is nudged onto the
        // right side of the boundary) and stable just past it.
        EXPECT_FALSE(table.online_at(c, off)) << "client " << c << " t " << t;
        EXPECT_FALSE(table.online_at(c, off + eps));
        EXPECT_LE(off, t + period * (1.0 + 1e-12));
      } else {
        EXPECT_EQ(off, t);
        EXPECT_GT(on, t);
        EXPECT_TRUE(table.online_at(c, on)) << "client " << c << " t " << t;
        EXPECT_TRUE(table.online_at(c, on + eps));
        EXPECT_LE(on, t + period * (1.0 + 1e-12));
      }
    }
  }
}

TEST(ScheduleTable, PhasesAreSeedDeterministic) {
  const ScheduleTable a(config(9.0, 0.5, 123), 16);
  const ScheduleTable b(config(9.0, 0.5, 123), 16);
  const ScheduleTable other(config(9.0, 0.5, 124), 16);
  bool any_difference = false;
  for (std::size_t c = 0; c < 16; ++c) {
    for (double t = 0.0; t < 9.0; t += 0.31) {
      EXPECT_EQ(a.online_at(c, t), b.online_at(c, t));
      any_difference =
          any_difference || (a.online_at(c, t) != other.online_at(c, t));
    }
  }
  // 16 clients x 30 samples: at least one phase must land differently.
  EXPECT_TRUE(any_difference);
}

TEST(ScheduleTable, ClientsHaveDistinctPhases) {
  // The point of per-client phases is a *rolling* population, not a global
  // blackout: at any instant some clients should be up and some down.
  const ScheduleTable table(config(10.0, 0.5, 42), 32);
  bool saw_online = false;
  bool saw_offline = false;
  for (std::size_t c = 0; c < 32; ++c) {
    (table.online_at(c, 0.0) ? saw_online : saw_offline) = true;
  }
  EXPECT_TRUE(saw_online);
  EXPECT_TRUE(saw_offline);
}

TEST(ScheduleTable, ComposesWithChurnAsConjunction) {
  // A client is available iff its churn process AND its diurnal window both
  // say so; the composed oracle must agree with the two components.
  ChurnConfig churn;
  churn.mean_uptime = 30.0;
  churn.mean_downtime = 10.0;
  churn.seed = 42;
  const ScheduleConfig sched = config(16.0, 0.5, 42);
  const std::size_t clients = 6;

  const ChurnModel churn_only(churn, clients);
  const ScheduleTable schedule(sched, clients);
  const ChurnModel composed(churn, sched, clients);
  ASSERT_TRUE(composed.enabled());

  for (std::size_t c = 0; c < clients; ++c) {
    for (double t = 0.0; t < 120.0; t += 1.3) {
      EXPECT_EQ(composed.online_at(c, t),
                churn_only.online_at(c, t) && schedule.online_at(c, t))
          << "client " << c << " t " << t;
    }
  }
}

TEST(ScheduleTable, ComposedNextOnlineSatisfiesBothGates) {
  ChurnConfig churn;
  churn.mean_uptime = 20.0;
  churn.mean_downtime = 15.0;
  churn.seed = 9;
  const ScheduleConfig sched = config(13.0, 0.4, 9);
  const ChurnModel composed(churn, sched, 4);

  for (std::size_t c = 0; c < 4; ++c) {
    for (double t = 0.0; t < 80.0; t += 2.1) {
      // The fixpoint converges only where both components report online, so
      // the composed predicate holds exactly at the returned instant.
      const double on = composed.next_online(c, t);
      ASSERT_GE(on, t);
      EXPECT_TRUE(composed.online_at(c, on))
          << "client " << c << " t " << t << " -> " << on;
      const double off = composed.next_offline(c, t);
      ASSERT_GE(off, t);
      EXPECT_FALSE(composed.online_at(c, off + 1e-9))
          << "client " << c << " t " << t << " -> " << off;
    }
  }
}

TEST(ScheduleTable, ScheduleOnlyChurnModelMirrorsTheTable) {
  // mean_uptime == 0 disables the crash process; the overlay alone drives
  // availability, so diurnal hazards work without configuring churn.
  ChurnConfig no_churn;  // mean_uptime = 0
  const ScheduleConfig sched = config(11.0, 0.6, 3);
  const std::size_t clients = 5;
  const ChurnModel model(no_churn, sched, clients);
  const ScheduleTable table(sched, clients);
  ASSERT_TRUE(model.enabled());
  EXPECT_EQ(model.num_clients(), clients);
  for (std::size_t c = 0; c < clients; ++c) {
    for (double t = 0.0; t < 50.0; t += 0.9) {
      EXPECT_EQ(model.online_at(c, t), table.online_at(c, t));
      EXPECT_EQ(model.next_offline(c, t), table.next_offline(c, t));
      EXPECT_EQ(model.next_online(c, t), table.next_online(c, t));
    }
  }
}

}  // namespace
}  // namespace seafl
