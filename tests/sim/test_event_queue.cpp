#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace seafl {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ClockAdvancesOnlyOnExecution) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  q.run_one();
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueueTest, ScheduleAfterIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(2.0, [&] {
    q.schedule_after(3.0, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueueTest, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.run_one();
  EXPECT_THROW(q.schedule_at(5.0, [] {}), Error);
  EXPECT_THROW(q.schedule_after(-1.0, [] {}), Error);
}

TEST(EventQueueTest, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1.0, nullptr), Error);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const auto id = q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
  q.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueueTest, CancelDuringExecution) {
  EventQueue q;
  int fired = 0;
  std::uint64_t victim = 0;
  q.schedule_at(1.0, [&] { q.cancel(victim); });
  victim = q.schedule_at(2.0, [&] { ++fired; });
  q.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, PendingCountsLiveEventsOnly) {
  EventQueue q;
  const auto a = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  q.run_all();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  const auto n = q.run_until(2.5);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  // Clock advances to the boundary even without events there.
  EXPECT_DOUBLE_EQ(q.now(), 2.5);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(EventQueueTest, RunUntilInclusiveOfBoundaryEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(2.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, EventsScheduledDuringRunAllExecute) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) q.schedule_after(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  const auto n = q.run_all();
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueueTest, RunAllGuardsAgainstRunawayLoops) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule_after(1.0, forever); };
  q.schedule_at(0.0, forever);
  EXPECT_THROW(q.run_all(/*max_events=*/100), Error);
}

TEST(EventQueueTest, RunOneOnEmptyQueueReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.run_one());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

// Regression: the schedule/cancel/reschedule pattern Simulation uses for
// upload events (every SEAFL^2 notification cancels and reschedules an
// arrival) must not accumulate dead heap entries without bound.
TEST(EventQueueTest, CancelCompactsDeadHeapEntries) {
  EventQueue q;
  q.schedule_at(1e9, [] {});  // one live event keeps the queue non-empty
  for (int i = 0; i < 100'000; ++i) {
    const auto id = q.schedule_at(1.0 + i * 1e-6, [] {});
    q.cancel(id);
    // Bound from maybe_compact: at most 2x live entries, plus the floor
    // below which compaction doesn't bother.
    ASSERT_LE(q.heap_size(), 2 * q.pending() + 64);
  }
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_LE(q.heap_size(), 66u);
}

TEST(EventQueueTest, CompactionPreservesOrderAndLiveEvents) {
  EventQueue q;
  std::vector<int> order;
  std::vector<std::uint64_t> victims;
  // Interleave survivors with a dominating majority of cancelled events so
  // compaction definitely triggers mid-stream.
  for (int i = 0; i < 300; ++i) {
    const double t = 1.0 + i;
    if (i % 3 == 0) {
      q.schedule_at(t, [&order, i] { order.push_back(i); });
    } else {
      victims.push_back(q.schedule_at(t, [&order] { order.push_back(-1); }));
    }
  }
  for (const auto id : victims) EXPECT_TRUE(q.cancel(id));
  q.run_all();
  std::vector<int> expected;
  for (int i = 0; i < 300; i += 3) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace seafl
