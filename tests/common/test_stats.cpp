#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.h"

namespace seafl {
namespace {

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);  // classic textbook example
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, EmptyMinMaxThrow) {
  RunningStats s;
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.max(), Error);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, StableUnderLargeOffsets) {
  // Welford must not lose precision with a large common offset.
  RunningStats s;
  for (const double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0})
    s.add(x);
  EXPECT_NEAR(s.mean(), 1e9 + 10.0, 1e-3);
  EXPECT_NEAR(s.variance(), 22.5, 1e-6);
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
  EXPECT_NEAR(percentile(v, 1.0 / 3.0), 20.0, 1e-12);
}

TEST(PercentileTest, UnsortedInputHandled) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(PercentileTest, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.7), 7.0);
}

TEST(PercentileTest, RejectsBadInput) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile({}, 0.5), Error);
  EXPECT_THROW(percentile(v, 1.5), Error);
  EXPECT_THROW(percentile(v, -0.1), Error);
}

TEST(JainsIndexTest, UniformIsOne) {
  const std::vector<double> v{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jains_index(v), 1.0);
}

TEST(JainsIndexTest, SingleHotIsOneOverN) {
  const std::vector<double> v{1.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(jains_index(v), 0.25, 1e-12);
}

TEST(JainsIndexTest, KnownMixedCase) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  // (6)^2 / (3 * 14) = 36/42.
  EXPECT_NEAR(jains_index(v), 36.0 / 42.0, 1e-12);
}

TEST(JainsIndexTest, AllZerosIsTriviallyFair) {
  const std::vector<double> v{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jains_index(v), 1.0);
}

TEST(JainsIndexTest, RejectsBadInput) {
  const std::vector<double> neg{1.0, -1.0};
  EXPECT_THROW(jains_index({}), Error);
  EXPECT_THROW(jains_index(neg), Error);
}

}  // namespace
}  // namespace seafl
