#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.h"

namespace seafl {
namespace {

TEST(SplitMix64Test, KnownSequenceIsStable) {
  // Reference values for seed 0 from the SplitMix64 reference implementation.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(s), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(s), 0x06c45d188009454fULL);
}

TEST(DeriveSeedTest, DistinctLabelsGiveDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 10; ++a)
    for (std::uint64_t b = 0; b < 10; ++b)
      for (std::uint64_t c = 0; c < 5; ++c)
        seen.insert(derive_seed(42, a, b, c));
  EXPECT_EQ(seen.size(), 10u * 10u * 5u);
}

TEST(DeriveSeedTest, DeterministicAcrossCalls) {
  EXPECT_EQ(derive_seed(1, 2, 3, 4, 5), derive_seed(1, 2, 3, 4, 5));
  EXPECT_NE(derive_seed(1, 2, 3, 4, 5), derive_seed(2, 2, 3, 4, 5));
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, PurposeConstructorMatchesDerivedSeed) {
  Rng direct(derive_seed(9, static_cast<std::uint64_t>(RngPurpose::kInit), 7,
                         8, 0));
  Rng purpose(9, RngPurpose::kInit, 7, 8);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(direct(), purpose());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double total = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(17);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.uniform_int(7)];
  for (const int c : counts) EXPECT_GT(c, 700);  // ~1000 expected each
}

TEST(RngTest, UniformIntRejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatchStandardNormal) {
  Rng rng(23);
  constexpr int kN = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(RngTest, NormalScalesMeanAndStddev) {
  Rng rng(29);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / kN, 5.0, 0.02);
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  // And it actually moved something.
  std::vector<int> identity(100);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(v, identity);
}

TEST(RngTest, ShuffleHandlesTinyContainers) {
  Rng rng(41);
  std::vector<int> empty;
  std::vector<int> one{5};
  rng.shuffle(empty);
  rng.shuffle(one);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one[0], 5);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), std::numeric_limits<std::uint64_t>::max());
}

// Parameterized determinism sweep: every purpose/seed combo reproduces.
class RngStreamTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(RngStreamTest, StreamsReproduceBitForBit) {
  const auto [seed, purpose_int] = GetParam();
  const auto purpose = static_cast<RngPurpose>(purpose_int);
  Rng a(seed, purpose, 3, 1);
  Rng b(seed, purpose, 3, 1);
  for (int i = 0; i < 50; ++i) ASSERT_EQ(a(), b());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPurposes, RngStreamTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(0, 1, 42, 1u << 31),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7)));

}  // namespace
}  // namespace seafl
