#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"

namespace seafl {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroThreadsDefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(0, visits.size(),
               [&](std::size_t i) { ++visits[i]; }, /*grain=*/8);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; });
  parallel_for(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, NonZeroBeginRespected) {
  std::vector<int> hit(20, 0);
  parallel_for(10, 20, [&](std::size_t i) { hit[i] = 1; }, 1);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(hit[i], 0);
  for (std::size_t i = 10; i < 20; ++i) EXPECT_EQ(hit[i], 1);
}

TEST(ParallelForChunkedTest, ChunksTileTheRange) {
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_chunked(
      0, 1000,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(m);
        chunks.emplace_back(lo, hi);
      },
      10);
  std::sort(chunks.begin(), chunks.end());
  std::size_t expected_lo = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected_lo);
    EXPECT_GT(hi, lo);
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, 1000u);
}

TEST(ParallelForChunkedTest, SmallRangeRunsAsSingleChunk) {
  int calls = 0;
  parallel_for_chunked(
      0, 10,
      [&](std::size_t lo, std::size_t hi) {
        ++calls;
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 10u);
      },
      1024);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SumMatchesSerial) {
  constexpr std::size_t kN = 100000;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) values[i] = std::sqrt(i + 1.0);
  std::atomic<long long> parallel_sum{0};
  parallel_for(0, kN, [&](std::size_t i) {
    parallel_sum += static_cast<long long>(values[i] * 100);
  });
  long long serial_sum = 0;
  for (std::size_t i = 0; i < kN; ++i)
    serial_sum += static_cast<long long>(values[i] * 100);
  EXPECT_EQ(parallel_sum.load(), serial_sum);
}

TEST(GlobalPoolTest, IsASingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1u);
}

}  // namespace
}  // namespace seafl
