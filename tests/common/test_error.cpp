#include <gtest/gtest.h>

#include "common/error.h"

namespace seafl {
namespace {

TEST(ErrorTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(SEAFL_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(SEAFL_CHECK(true, "message " << 42));
}

TEST(ErrorTest, FailingCheckThrowsSeaflError) {
  EXPECT_THROW(SEAFL_CHECK(false), Error);
  EXPECT_THROW(SEAFL_CHECK(1 > 2, "impossible"), Error);
}

TEST(ErrorTest, MessageContainsExpressionAndDetail) {
  try {
    const int k = -3;
    SEAFL_CHECK(k > 0, "buffer size must be positive, got " << k);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("k > 0"), std::string::npos) << what;
    EXPECT_NE(what.find("got -3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos) << what;
  }
}

TEST(ErrorTest, MessageWithoutDetailStillNamesExpression) {
  try {
    SEAFL_CHECK(2 < 1);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
  }
}

TEST(ErrorTest, CheckEvaluatesExpressionExactlyOnce) {
  int calls = 0;
  auto counted = [&calls] {
    ++calls;
    return true;
  };
  SEAFL_CHECK(counted());
  EXPECT_EQ(calls, 1);
}

TEST(ErrorTest, ErrorIsARuntimeError) {
  const Error e("boom");
  const std::runtime_error& base = e;
  EXPECT_STREQ(base.what(), "boom");
}

#ifndef NDEBUG
TEST(ErrorTest, DcheckActiveInDebugBuilds) {
  EXPECT_THROW(SEAFL_DCHECK(false), Error);
}
#else
TEST(ErrorTest, DcheckCompiledOutInReleaseBuilds) {
  EXPECT_NO_THROW(SEAFL_DCHECK(false));
}
#endif

}  // namespace
}  // namespace seafl
