#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/distributions.h"

namespace seafl {
namespace {

// ------------------------------------------------------------------- Zipf

TEST(ZipfTest, SamplesStayInRange) {
  ZipfSampler zipf(60, 1.7);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto k = zipf.sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 60u);
  }
}

TEST(ZipfTest, RankOneIsTheMode) {
  ZipfSampler zipf(60, 1.7);
  Rng rng(2);
  std::vector<int> counts(61, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
  // With s = 1.7, P(1) = 1 / sum(k^-1.7) ~ 0.55.
  EXPECT_NEAR(counts[1] / 20000.0, 0.55, 0.05);
}

TEST(ZipfTest, DegenerateSingleRank) {
  ZipfSampler zipf(1, 1.7);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.sample(rng), 1u);
}

TEST(ZipfTest, RejectsInvalidParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), Error);
  EXPECT_THROW(ZipfSampler(10, 0.0), Error);
  EXPECT_THROW(ZipfSampler(10, -1.0), Error);
}

class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, LargerExponentConcentratesMassAtRankOne) {
  const double s = GetParam();
  ZipfSampler zipf(30, s);
  Rng rng(5);
  int ones = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i)
    if (zipf.sample(rng) == 1) ++ones;
  // Analytic P(1) for comparison.
  double z = 0.0;
  for (int k = 1; k <= 30; ++k) z += std::pow(k, -s);
  EXPECT_NEAR(ones / static_cast<double>(kN), 1.0 / z, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.8, 1.2, 1.7, 2.5));

// ----------------------------------------------------------------- Pareto

TEST(ParetoTest, SamplesExceedScale) {
  ParetoSampler pareto(2.0, 1.5);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) EXPECT_GE(pareto.sample(rng), 2.0);
}

TEST(ParetoTest, CappedSamplingRespectsCap) {
  ParetoSampler pareto(1.0, 1.1);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const double v = pareto.sample_capped(rng, 20.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 20.0);
  }
}

TEST(ParetoTest, MeanMatchesTheoryForShapeAboveOne) {
  // E[X] = shape * scale / (shape - 1) for shape > 1.
  ParetoSampler pareto(1.0, 3.0);
  Rng rng(11);
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += pareto.sample(rng);
  EXPECT_NEAR(total / kN, 1.5, 0.03);
}

TEST(ParetoTest, HeavierTailWithSmallerShape) {
  Rng rng_a(13), rng_b(13);
  ParetoSampler heavy(1.0, 1.1), light(1.0, 3.0);
  int heavy_extreme = 0, light_extreme = 0;
  for (int i = 0; i < 20000; ++i) {
    if (heavy.sample(rng_a) > 10.0) ++heavy_extreme;
    if (light.sample(rng_b) > 10.0) ++light_extreme;
  }
  EXPECT_GT(heavy_extreme, 5 * std::max(light_extreme, 1));
}

TEST(ParetoTest, RejectsInvalidParameters) {
  EXPECT_THROW(ParetoSampler(0.0, 1.0), Error);
  EXPECT_THROW(ParetoSampler(1.0, 0.0), Error);
}

// ------------------------------------------------------------------ Gamma

TEST(GammaTest, SamplesArePositive) {
  Rng rng(17);
  for (const double shape : {0.3, 0.9, 1.0, 2.5, 10.0}) {
    for (int i = 0; i < 1000; ++i) EXPECT_GT(sample_gamma(rng, shape), 0.0);
  }
}

TEST(GammaTest, MeanEqualsShape) {
  Rng rng(19);
  for (const double shape : {0.5, 2.0, 7.0}) {
    double total = 0.0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i) total += sample_gamma(rng, shape);
    EXPECT_NEAR(total / kN, shape, shape * 0.05);
  }
}

TEST(GammaTest, RejectsNonPositiveShape) {
  Rng rng(1);
  EXPECT_THROW(sample_gamma(rng, 0.0), Error);
  EXPECT_THROW(sample_gamma(rng, -1.0), Error);
}

// -------------------------------------------------------------- Dirichlet

TEST(DirichletTest, SumsToOne) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const auto v = sample_dirichlet(rng, 10, 0.3);
    EXPECT_NEAR(std::accumulate(v.begin(), v.end(), 0.0), 1.0, 1e-9);
    for (const double p : v) EXPECT_GE(p, 0.0);
  }
}

TEST(DirichletTest, SmallAlphaIsSkewed) {
  Rng rng(29);
  // With alpha = 0.1 the max coordinate should usually dominate.
  int dominated = 0;
  for (int i = 0; i < 200; ++i) {
    const auto v = sample_dirichlet(rng, 10, 0.1);
    if (*std::max_element(v.begin(), v.end()) > 0.5) ++dominated;
  }
  EXPECT_GT(dominated, 120);
}

TEST(DirichletTest, LargeAlphaIsNearUniform) {
  Rng rng(31);
  double max_dev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const auto v = sample_dirichlet(rng, 10, 100.0);
    for (const double p : v) max_dev = std::max(max_dev, std::abs(p - 0.1));
  }
  EXPECT_LT(max_dev, 0.08);
}

TEST(DirichletTest, DimensionOneIsDegenerate) {
  Rng rng(37);
  const auto v = sample_dirichlet(rng, 1, 0.5);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
}

TEST(DirichletTest, RejectsInvalidParameters) {
  Rng rng(1);
  EXPECT_THROW(sample_dirichlet(rng, 0, 1.0), Error);
  EXPECT_THROW(sample_dirichlet(rng, 3, 0.0), Error);
}

// ------------------------------------------------------------ Exponential

TEST(ExponentialTest, MeanIsInverseRate) {
  Rng rng(41);
  double total = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) total += sample_exponential(rng, 4.0);
  EXPECT_NEAR(total / kN, 0.25, 0.01);
}

TEST(ExponentialTest, SamplesArePositive) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i)
    EXPECT_GT(sample_exponential(rng, 1.0), 0.0);
}

TEST(ExponentialTest, RejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(sample_exponential(rng, 0.0), Error);
}

}  // namespace
}  // namespace seafl
