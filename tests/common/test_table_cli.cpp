#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.h"
#include "common/error.h"
#include "common/table.h"

namespace seafl {
namespace {

// --------------------------------------------------------------------- CLI

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(CliTest, ParsesEqualsForm) {
  auto v = argv_of({"--alpha=3.5", "--name=seafl"});
  CliArgs args(static_cast<int>(v.size()), v.data());
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 3.5);
  EXPECT_EQ(args.get_string("name", ""), "seafl");
}

TEST(CliTest, ParsesSpaceForm) {
  auto v = argv_of({"--rounds", "200", "--task", "synth-emnist"});
  CliArgs args(static_cast<int>(v.size()), v.data());
  EXPECT_EQ(args.get_int("rounds", 0), 200);
  EXPECT_EQ(args.get_string("task", ""), "synth-emnist");
}

TEST(CliTest, BooleanSwitches) {
  auto v = argv_of({"--fast", "--verbose=false", "--deep=1"});
  CliArgs args(static_cast<int>(v.size()), v.data());
  EXPECT_TRUE(args.get_bool("fast", false));
  EXPECT_FALSE(args.get_bool("verbose", true));
  EXPECT_TRUE(args.get_bool("deep", false));
  EXPECT_TRUE(args.get_bool("absent", true));
  EXPECT_FALSE(args.get_bool("absent2", false));
}

TEST(CliTest, FallbacksWhenAbsent) {
  auto v = argv_of({});
  CliArgs args(static_cast<int>(v.size()), v.data());
  EXPECT_EQ(args.get_int("k", 10), 10);
  EXPECT_DOUBLE_EQ(args.get_double("mu", 1.0), 1.0);
  EXPECT_EQ(args.get_string("algo", "seafl"), "seafl");
  EXPECT_FALSE(args.has("k"));
}

TEST(CliTest, PositionalArgumentsCollected) {
  auto v = argv_of({"run", "--k=3", "extra"});
  CliArgs args(static_cast<int>(v.size()), v.data());
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "run");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(CliTest, NegativeNumbersAsValues) {
  auto v = argv_of({"--offset=-5", "--bias", "-2.5"});
  CliArgs args(static_cast<int>(v.size()), v.data());
  EXPECT_EQ(args.get_int("offset", 0), -5);
  // "--bias -2.5": "-2.5" does not start with "--" so it is consumed as value.
  EXPECT_DOUBLE_EQ(args.get_double("bias", 0.0), -2.5);
}

TEST(CliTest, RejectsNonBooleanValueForBool) {
  auto v = argv_of({"--flag=maybe"});
  CliArgs args(static_cast<int>(v.size()), v.data());
  EXPECT_THROW(args.get_bool("flag", false), Error);
}

// ------------------------------------------------------------------- Table

TEST(TableTest, RowArityEnforced) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, HeaderAfterRowsRejected) {
  Table t;
  t.add_row({"x"});
  EXPECT_THROW(t.set_header({"a"}), Error);
}

TEST(TableTest, CsvRoundTrip) {
  Table t("fig");
  t.set_header({"k", "time", "note"});
  t.add_row({"1", "2.5", "plain"});
  t.add_row({"2", "3.5", "has,comma"});
  t.add_row({"3", "4.5", "has\"quote"});
  const std::string path = ::testing::TempDir() + "/seafl_table_test.csv";
  t.write_csv(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,time,note");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5,plain");
  std::getline(in, line);
  EXPECT_EQ(line, "2,3.5,\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4.5,\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(TableTest, CsvRejectsBadPath) {
  Table t;
  t.add_row({"x"});
  EXPECT_THROW(t.write_csv("/nonexistent-dir/foo.csv"), Error);
}

TEST(FmtTest, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(FmtTest, TimeOrNa) {
  EXPECT_EQ(fmt_time_or_na(12.34), "12.3s");
  EXPECT_EQ(fmt_time_or_na(-1.0), "n/a");
  EXPECT_EQ(fmt_time_or_na(0.0), "0.0s");
}

}  // namespace
}  // namespace seafl
