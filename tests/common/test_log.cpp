#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/log.h"

namespace seafl {
namespace {

/// Captures lines in memory for assertions.
class CaptureSink final : public LineSink {
 public:
  void write_line(std::string_view line) override {
    lines.emplace_back(line);
  }
  std::vector<std::string> lines;
};

/// Redirects the logger for one test, restoring defaults afterwards.
struct LogRedirect {
  CaptureSink sink;
  LogLevel prev_level;
  explicit LogRedirect(LogLevel level = LogLevel::kDebug)
      : prev_level(log_level()) {
    set_log_level(level);
    set_log_sink(&sink);
  }
  ~LogRedirect() {
    set_log_sink(nullptr);
    set_log_level(prev_level);
  }
};

TEST(LogTest, RoutesThroughInstalledSink) {
  LogRedirect log;
  SEAFL_INFO("hello " << 42);
  ASSERT_EQ(log.sink.lines.size(), 1u);
  EXPECT_NE(log.sink.lines[0].find("hello 42"), std::string::npos);
  EXPECT_NE(log.sink.lines[0].find("INFO"), std::string::npos);
}

TEST(LogTest, LevelFilterDropsBelowThreshold) {
  LogRedirect log(LogLevel::kWarn);
  SEAFL_DEBUG("dropped");
  SEAFL_INFO("dropped");
  SEAFL_WARN("kept");
  SEAFL_ERROR("kept");
  ASSERT_EQ(log.sink.lines.size(), 2u);
  EXPECT_NE(log.sink.lines[0].find("WARN"), std::string::npos);
  EXPECT_NE(log.sink.lines[1].find("ERROR"), std::string::npos);
}

TEST(LogTest, NullSinkRestoresStderrDefaultWithoutCrashing) {
  {
    LogRedirect log;
    SEAFL_INFO("captured");
    EXPECT_EQ(log.sink.lines.size(), 1u);
  }
  // Back on the default sink: must not crash (output goes to stderr).
  SEAFL_LOG_AT(LogLevel::kOff, "never emitted");
}

TEST(LogTest, EveryNFiresFirstThenEveryNth) {
  LogRedirect log;
  for (int i = 0; i < 10; ++i) {
    SEAFL_INFO_EVERY_N(4, "tick " << i);
  }
  // Occurrences 1, 5, 9.
  ASSERT_EQ(log.sink.lines.size(), 3u);
  EXPECT_NE(log.sink.lines[0].find("tick 0"), std::string::npos);
  EXPECT_NE(log.sink.lines[1].find("tick 4"), std::string::npos);
  EXPECT_NE(log.sink.lines[2].find("tick 8"), std::string::npos);
}

TEST(LogTest, EveryNCountersArePerCallSite) {
  LogRedirect log;
  for (int i = 0; i < 3; ++i) {
    SEAFL_INFO_EVERY_N(2, "site A " << i);
    SEAFL_INFO_EVERY_N(2, "site B " << i);
  }
  // Each site fires independently at occurrences 1 and 3.
  ASSERT_EQ(log.sink.lines.size(), 4u);
  EXPECT_NE(log.sink.lines[0].find("site A 0"), std::string::npos);
  EXPECT_NE(log.sink.lines[1].find("site B 0"), std::string::npos);
  EXPECT_NE(log.sink.lines[2].find("site A 2"), std::string::npos);
  EXPECT_NE(log.sink.lines[3].find("site B 2"), std::string::npos);
}

TEST(LogTest, EveryNCountsWhileLevelFilterDrops) {
  LogRedirect log(LogLevel::kError);
  auto tick = [] { SEAFL_INFO_EVERY_N(3, "cadence"); };
  tick();  // occurrence 1: would fire, but level drops it
  tick();  // occurrence 2
  set_log_level(LogLevel::kDebug);
  tick();  // occurrence 3: counted through the silence, so not a multiple
  EXPECT_TRUE(log.sink.lines.empty());
  tick();  // occurrence 4: fires (3n + 1)
  ASSERT_EQ(log.sink.lines.size(), 1u);
}

TEST(LogTest, FileSinkWritesLinesAndReportsPath) {
  const std::string path = ::testing::TempDir() + "/log_sink_test.txt";
  {
    FileSink sink(path);
    EXPECT_EQ(sink.path(), path);
    set_log_sink(&sink);
    const LogLevel prev = log_level();
    set_log_level(LogLevel::kInfo);
    SEAFL_INFO("to file");
    set_log_sink(nullptr);
    set_log_level(prev);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("to file"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LogTest, FileSinkThrowsOnUnwritablePath) {
  EXPECT_THROW(FileSink("/nonexistent-dir/out.log"), Error);
}

}  // namespace
}  // namespace seafl
