#include "compress/residual.h"

#include <gtest/gtest.h>

#include <vector>

#include "compress/codec.h"

namespace seafl::compress {
namespace {

TEST(ResidualStoreTest, LazilyCreatesZeroVectors) {
  ResidualStore store;
  EXPECT_FALSE(store.has(3));
  EXPECT_EQ(store.size(), 0u);
  std::vector<float>& r = store.for_client(3, 5);
  EXPECT_EQ(r, std::vector<float>(5, 0.0f));
  EXPECT_TRUE(store.has(3));
  EXPECT_EQ(store.size(), 1u);
  r[2] = 1.5f;
  EXPECT_EQ(store.for_client(3, 5)[2], 1.5f);  // same storage, not a copy
}

TEST(ResidualStoreTest, ResetDropsCarriedState) {
  ResidualStore store;
  store.for_client(7, 4)[0] = 2.0f;
  store.reset(7);
  EXPECT_FALSE(store.has(7));
  EXPECT_EQ(store.for_client(7, 4)[0], 0.0f);
}

TEST(ResidualStoreTest, ClientsAreIndependent) {
  ResidualStore store;
  store.for_client(1, 3)[0] = 1.0f;
  store.for_client(2, 3)[0] = -1.0f;
  EXPECT_EQ(store.for_client(1, 3)[0], 1.0f);
  EXPECT_EQ(store.for_client(2, 3)[0], -1.0f);
}

// The fault-path contract: re-encoding the SAME delivered bytes must never
// touch the residual twice. Both drivers guarantee this by construction
// (encode exactly once per delivered upload); here we pin the primitive that
// makes retries safe — encode with residual=nullptr leaves carried state
// untouched, so a driver that prices or probes an encode cannot corrupt it.
TEST(ResidualStoreTest, ResidualOnlyAdvancesWhenPassedToEncode) {
  CompressionConfig config;
  config.codec = CodecKind::kTopK;
  config.topk_fraction = 0.25;
  config.bits = 32;
  config.error_feedback = true;
  const auto codec = make_codec(config);

  ResidualStore store;
  const std::vector<float> base(8, 0.0f);
  const std::vector<float> w{4.0f, 0.1f, 0.2f, -3.0f, 0.05f, 0.0f, 0.1f, 0.2f};

  // A probe encode (no residual pointer) must not create or mutate state.
  codec->encode(w, base, nullptr, /*client=*/5, /*round=*/0, /*seed=*/1);
  EXPECT_FALSE(store.has(5));

  std::vector<float>& r = store.for_client(5, w.size());
  const CompressedUpdate first = codec->encode(w, base, &r, 5, 0, 1);
  const std::vector<float> after_first = r;
  // Dropped coordinates carried forward; kept ones cleared.
  EXPECT_EQ(after_first[0], 0.0f);
  EXPECT_EQ(after_first[3], 0.0f);
  EXPECT_FLOAT_EQ(after_first[1], 0.1f);

  // A retry re-sends `first` verbatim — nothing re-encodes, so the residual
  // is bitwise what it was after the single delivered encode.
  EXPECT_EQ(store.for_client(5, w.size()), after_first);

  // The next *delivered* encode folds the carried mass in exactly once.
  std::vector<float> expected_input(w.size());
  for (std::size_t i = 0; i < w.size(); ++i)
    expected_input[i] = w[i] + after_first[i];
  const CompressedUpdate second = codec->encode(w, base, &r, 5, 1, 1);
  const std::vector<float> delta = codec->decode(second, base);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(r[i], expected_input[i] - delta[i], 1e-6) << "i=" << i;
}

}  // namespace
}  // namespace seafl::compress
