// Backend invariance of the codecs (DESIGN.md §17): the AVX2 q8 kernels in
// compress/codec_simd must be bitwise-identical to the scalar BitWriter
// arithmetic — same stochastic-rounding stream consumption, exact
// small-integer double math — so an encode or decode produces the same
// payload bytes, scale, residual, and reconstructed weights under either
// vector backend. Bit widths off the q8 fast path (e.g. 4) share the
// packing loop across backends and are exercised as a control.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compress/codec.h"
#include "tensor/ops.h"

namespace seafl::compress {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  seafl::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

struct EncodeResult {
  CompressedUpdate update;
  std::vector<float> residual;
  std::vector<float> decoded;
};

/// One full client->server trip under `backend`: encode with a nonzero
/// carried residual (exercises the error-feedback fold), then decode.
EncodeResult round_trip(seafl::VectorBackend backend, const Codec& codec,
                        const std::vector<float>& weights,
                        const std::vector<float>& base) {
  seafl::VectorBackendScope scope(backend);
  EncodeResult r;
  r.residual.resize(weights.size());
  for (std::size_t i = 0; i < r.residual.size(); ++i)
    r.residual[i] = 0.01f * static_cast<float>(i % 7);
  r.update = codec.encode(weights, base, &r.residual, /*client=*/3,
                          /*round=*/5, /*seed=*/42);
  r.decoded = codec.decode(r.update, base);
  return r;
}

void expect_backends_agree(const CompressionConfig& config, std::size_t dim) {
  SCOPED_TRACE(::testing::Message()
               << codec_kind_name(config.codec) << " bits=" << config.bits
               << " dim=" << dim);
  const auto codec = make_codec(config);
  const std::vector<float> base = random_vec(dim, 100 + dim);
  std::vector<float> weights = base;
  const std::vector<float> delta = random_vec(dim, 200 + dim);
  for (std::size_t i = 0; i < dim; ++i) weights[i] += 0.1f * delta[i];

  const EncodeResult s =
      round_trip(seafl::VectorBackend::kScalar, *codec, weights, base);
  const EncodeResult v =
      round_trip(seafl::VectorBackend::kSimd, *codec, weights, base);

  EXPECT_EQ(s.update.payload, v.update.payload);  // byte-for-byte
  EXPECT_EQ(s.update.scale, v.update.scale);
  EXPECT_EQ(s.update.bits, v.update.bits);
  EXPECT_EQ(s.update.k, v.update.k);
  EXPECT_EQ(s.residual, v.residual);
  EXPECT_EQ(s.decoded, v.decoded);

  // Cross-backend decode of the same payload: a SIMD-encoded update decoded
  // by the scalar kernels (and vice versa) reconstructs the same weights —
  // the deployment case of client and server running different builds.
  {
    seafl::VectorBackendScope scope(seafl::VectorBackend::kScalar);
    EXPECT_EQ(codec->decode(v.update, base), v.decoded);
  }
  {
    seafl::VectorBackendScope scope(seafl::VectorBackend::kSimd);
    EXPECT_EQ(codec->decode(s.update, base), s.decoded);
  }
}

TEST(CodecSimdTest, QuantizeInt8BackendsAgree) {
  if (!seafl::simd_vector_available())
    GTEST_SKIP() << "no SIMD table on this host";
  CompressionConfig config;
  config.codec = CodecKind::kQuantize;
  config.bits = 8;  // the q8 AVX2 fast path
  for (std::size_t dim : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                          std::size_t{7}, std::size_t{8}, std::size_t{1003},
                          std::size_t{4096}}) {
    expect_backends_agree(config, dim);
  }
}

TEST(CodecSimdTest, QuantizeInt4BackendsAgree) {
  if (!seafl::simd_vector_available())
    GTEST_SKIP() << "no SIMD table on this host";
  CompressionConfig config;
  config.codec = CodecKind::kQuantize;
  config.bits = 4;  // BitWriter path: backend-invariant by construction
  expect_backends_agree(config, 1003);
}

TEST(CodecSimdTest, TopKBackendsAgree) {
  if (!seafl::simd_vector_available())
    GTEST_SKIP() << "no SIMD table on this host";
  CompressionConfig config;
  config.codec = CodecKind::kTopK;
  config.bits = 32;
  config.topk_fraction = 0.25;
  expect_backends_agree(config, 1003);
  config.bits = 8;  // kept values quantized through the same q8 grid
  expect_backends_agree(config, 1003);
}

TEST(CodecSimdTest, AllZeroDeltaEncodesToZeroScaleOnBothBackends) {
  CompressionConfig config;
  config.codec = CodecKind::kQuantize;
  config.bits = 8;
  const auto codec = make_codec(config);
  const std::vector<float> base = random_vec(64, 9);
  for (seafl::VectorBackend backend :
       {seafl::VectorBackend::kScalar, seafl::VectorBackend::kSimd}) {
    seafl::VectorBackendScope scope(backend);
    const CompressedUpdate u =
        codec->encode(base, base, nullptr, 0, 0, 42);  // delta == 0
    EXPECT_EQ(u.scale, 0.0f);
    EXPECT_EQ(codec->decode(u, base), base);
  }
}

TEST(CodecSimdTest, DecodeIntoReusesBufferBitwise) {
  CompressionConfig config;
  config.codec = CodecKind::kQuantize;
  config.bits = 8;
  const auto codec = make_codec(config);
  const std::vector<float> base = random_vec(500, 21);
  std::vector<float> weights = base;
  for (auto& w : weights) w += 0.05f;
  const CompressedUpdate u = codec->encode(weights, base, nullptr, 1, 2, 42);

  std::vector<float> reused(17, 99.0f);  // wrong size, stale contents
  codec->decode_into(u, base, reused);
  EXPECT_EQ(reused, codec->decode(u, base));

  const float* data = reused.data();
  codec->decode_into(u, base, reused);  // second call: capacity reused
  EXPECT_EQ(reused.data(), data);
  EXPECT_EQ(reused, codec->decode(u, base));
}

}  // namespace
}  // namespace seafl::compress
