#include "compress/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "nn/serialize.h"

namespace seafl::compress {
namespace {

std::vector<float> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> w(n);
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, 0.5));
  return w;
}

CompressionConfig quantize_config(std::size_t bits) {
  CompressionConfig c;
  c.codec = CodecKind::kQuantize;
  c.bits = bits;
  return c;
}

CompressionConfig topk_config(double fraction, std::size_t bits,
                              bool error_feedback = true) {
  CompressionConfig c;
  c.codec = CodecKind::kTopK;
  c.topk_fraction = fraction;
  c.bits = bits;
  c.error_feedback = error_feedback;
  return c;
}

// --- config plumbing ---------------------------------------------------------

TEST(CompressionConfigTest, CodecNamesAndAliases) {
  CompressionConfig c;
  apply_codec_name(c, "int4");
  EXPECT_EQ(c.codec, CodecKind::kQuantize);
  EXPECT_EQ(c.bits, 4u);
  apply_codec_name(c, "int8");
  EXPECT_EQ(c.bits, 8u);
  apply_codec_name(c, "topk");
  EXPECT_EQ(c.codec, CodecKind::kTopK);
  EXPECT_EQ(c.bits, 8u);  // selector alone leaves the width alone
  apply_codec_name(c, "float32");
  EXPECT_EQ(c.codec, CodecKind::kIdentity);
  EXPECT_FALSE(c.enabled());
  EXPECT_THROW(apply_codec_name(c, "gzip"), Error);
}

TEST(CompressionConfigTest, ValidationRejectsConflictingKnobs) {
  EXPECT_THROW(validate_compression(quantize_config(1)), Error);
  EXPECT_THROW(validate_compression(quantize_config(17)), Error);
  EXPECT_NO_THROW(validate_compression(quantize_config(2)));
  EXPECT_NO_THROW(validate_compression(quantize_config(16)));

  EXPECT_THROW(validate_compression(topk_config(0.0, 32)), Error);
  EXPECT_THROW(validate_compression(topk_config(1.5, 32)), Error);
  EXPECT_THROW(validate_compression(topk_config(0.1, 20)), Error);
  // Coarse top-k without a carried residual loses too much mass.
  EXPECT_THROW(validate_compression(topk_config(0.1, 4, false)), Error);
  EXPECT_NO_THROW(validate_compression(topk_config(0.1, 4, true)));
  EXPECT_NO_THROW(validate_compression(topk_config(0.1, 8, false)));
  EXPECT_NO_THROW(validate_compression(topk_config(1.0, 32, false)));
}

// --- container ---------------------------------------------------------------

TEST(ContainerTest, RoundTripPreservesEveryField) {
  CompressedUpdate u;
  u.codec = CodecKind::kTopK;
  u.bits = 32;
  u.dim = 10;
  u.k = 2;
  u.scale = 0.0f;
  u.payload = std::string(2 * 4 + 2 * 4, '\x5a');
  std::string bytes;
  append_compressed(bytes, u);
  EXPECT_EQ(bytes.size(), u.encoded_bytes());

  std::size_t consumed = 0;
  const CompressedUpdate back =
      decode_compressed(bytes.data(), bytes.size(), &consumed);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(back.codec, u.codec);
  EXPECT_EQ(back.bits, u.bits);
  EXPECT_EQ(back.dim, u.dim);
  EXPECT_EQ(back.k, u.k);
  EXPECT_EQ(back.scale, u.scale);
  EXPECT_EQ(back.payload, u.payload);
}

TEST(ContainerTest, DecodeRejectsMalformedHeaders) {
  CompressedUpdate u;
  u.codec = CodecKind::kQuantize;
  u.bits = 8;
  u.dim = 4;
  u.k = 4;
  u.scale = 0.5f;
  u.payload = std::string(4, '\x01');
  std::string bytes;
  append_compressed(bytes, u);

  // Truncation, bad magic, bad version, bad codec byte, bad bit width,
  // k > dim, truncated payload: each must throw, never crash.
  EXPECT_THROW(decode_compressed(bytes.data(), kContainerHeaderBytes - 1),
               Error);
  {
    std::string bad = bytes;
    bad[0] = 'X';
    EXPECT_THROW(decode_compressed(bad.data(), bad.size()), Error);
  }
  {
    std::string bad = bytes;
    bad[8] = 9;  // version
    EXPECT_THROW(decode_compressed(bad.data(), bad.size()), Error);
  }
  {
    std::string bad = bytes;
    bad[10] = 7;  // codec byte
    EXPECT_THROW(decode_compressed(bad.data(), bad.size()), Error);
  }
  {
    std::string bad = bytes;
    bad[11] = 1;  // bits below the quantize floor
    EXPECT_THROW(decode_compressed(bad.data(), bad.size()), Error);
  }
  {
    std::string bad = bytes;
    bad[20] = 9;  // k = 9 > dim = 4
    EXPECT_THROW(decode_compressed(bad.data(), bad.size()), Error);
  }
  EXPECT_THROW(decode_compressed(bytes.data(), bytes.size() - 1), Error);
}

TEST(ContainerTest, FloatContainerHeaderMatchesSerializeLayer) {
  // kFloatContainerHeaderBytes pins the SEAFLMDL header size the byte
  // accounting assumes; if nn/serialize grows its header this fails loudly.
  std::string out;
  append_model_vector(out, std::vector<float>(7, 1.0f));
  EXPECT_EQ(out.size(), kFloatContainerHeaderBytes + 7 * sizeof(float));
}

// --- codec behaviour ---------------------------------------------------------

TEST(CodecTest, IdentityIsBitwiseAndSizedExactly) {
  CompressionConfig c;  // identity
  const auto codec = make_codec(c);
  const std::vector<float> w = random_vector(37, 1);
  const std::vector<float> base = random_vector(37, 2);
  const CompressedUpdate enc = codec->encode(w, base, nullptr, 3, 5, 42);
  EXPECT_EQ(enc.encoded_bytes(), codec->encoded_bytes_for(w.size()));
  const std::vector<float> back = codec->decode(enc, base);
  EXPECT_EQ(back, w);  // bitwise: identity ships absolute weights
}

TEST(CodecTest, EncodedSizeIsDataIndependent) {
  // The simulation prices an upload at dispatch, before the trained weights
  // exist — encoded_bytes_for must equal every actual encode's size.
  for (const std::size_t dim : {1ul, 3ul, 64ul, 999ul}) {
    const std::vector<float> base(dim, 0.0f);
    for (const auto& config :
         {quantize_config(8), quantize_config(3), topk_config(0.1, 32),
          topk_config(0.25, 5)}) {
      const auto codec = make_codec(config);
      const CompressedUpdate a =
          codec->encode(random_vector(dim, dim), base, nullptr, 0, 0, 7);
      const CompressedUpdate b =
          codec->encode(std::vector<float>(dim, 0.0f), base, nullptr, 0, 0, 7);
      EXPECT_EQ(a.encoded_bytes(), codec->encoded_bytes_for(dim));
      EXPECT_EQ(b.encoded_bytes(), codec->encoded_bytes_for(dim));
    }
  }
}

TEST(CodecTest, QuantizeRoundTripErrorBoundedByStep) {
  for (const std::size_t bits : {2ul, 4ul, 8ul, 16ul}) {
    const auto codec = make_codec(quantize_config(bits));
    const std::vector<float> base = random_vector(301, 11);
    std::vector<float> w = base;
    for (std::size_t i = 0; i < w.size(); ++i)
      w[i] += static_cast<float>(0.01 * std::sin(static_cast<double>(i)));
    const CompressedUpdate enc = codec->encode(w, base, nullptr, 1, 2, 3);
    const std::vector<float> back = codec->decode(enc, base);
    ASSERT_EQ(back.size(), w.size());
    // Stochastic rounding moves a value at most one grid step.
    for (std::size_t i = 0; i < w.size(); ++i)
      EXPECT_LE(std::fabs(back[i] - w[i]),
                static_cast<double>(enc.scale) + 1e-6)
          << "bits=" << bits << " i=" << i;
  }
}

TEST(CodecTest, EncodeIsDeterministicAndKeyedByClientAndRound) {
  const auto codec = make_codec(quantize_config(4));
  const std::vector<float> w = random_vector(128, 5);
  const std::vector<float> base(128, 0.0f);
  const CompressedUpdate a = codec->encode(w, base, nullptr, 7, 9, 42);
  const CompressedUpdate b = codec->encode(w, base, nullptr, 7, 9, 42);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.scale, b.scale);
  // A different client, round or seed draws a different rounding stream.
  EXPECT_NE(codec->encode(w, base, nullptr, 8, 9, 42).payload, a.payload);
  EXPECT_NE(codec->encode(w, base, nullptr, 7, 10, 42).payload, a.payload);
  EXPECT_NE(codec->encode(w, base, nullptr, 7, 9, 43).payload, a.payload);
}

TEST(CodecTest, QuantizeAllZeroDeltaKeepsSizeContract) {
  const auto codec = make_codec(quantize_config(8));
  const std::vector<float> base = random_vector(33, 3);
  const CompressedUpdate enc = codec->encode(base, base, nullptr, 0, 0, 1);
  EXPECT_EQ(enc.scale, 0.0f);
  EXPECT_EQ(enc.encoded_bytes(), codec->encoded_bytes_for(base.size()));
  EXPECT_EQ(codec->decode(enc, base), base);
}

TEST(CodecTest, TopKKeepsLargestMagnitudeCoordinates) {
  const auto codec = make_codec(topk_config(0.25, 32, false));
  std::vector<float> base(8, 0.0f);
  std::vector<float> w{0.1f, -5.0f, 0.2f, 3.0f, -0.1f, 0.0f, 0.05f, -0.2f};
  const CompressedUpdate enc = codec->encode(w, base, nullptr, 0, 0, 1);
  EXPECT_EQ(enc.k, 2u);  // ceil(0.25 * 8)
  const std::vector<float> back = codec->decode(enc, base);
  EXPECT_FLOAT_EQ(back[1], -5.0f);
  EXPECT_FLOAT_EQ(back[3], 3.0f);
  for (const std::size_t i : {0ul, 2ul, 4ul, 5ul, 6ul, 7ul})
    EXPECT_EQ(back[i], 0.0f) << "i=" << i;
}

TEST(CodecTest, TopKAlwaysKeepsAtLeastOneCoordinate) {
  const auto codec = make_codec(topk_config(0.001, 32, false));
  const std::vector<float> base(3, 0.0f);
  const CompressedUpdate enc =
      codec->encode({1.0f, 2.0f, 3.0f}, base, nullptr, 0, 0, 1);
  EXPECT_EQ(enc.k, 1u);
  EXPECT_FLOAT_EQ(codec->decode(enc, base)[2], 3.0f);
}

TEST(CodecTest, ErrorFeedbackResidualEqualsWhatWasDropped) {
  const auto codec = make_codec(topk_config(0.2, 32));
  const std::vector<float> base(50, 0.0f);
  const std::vector<float> w = random_vector(50, 13);
  std::vector<float> residual;  // empty = zeros, sized by the codec
  const CompressedUpdate enc = codec->encode(w, base, &residual, 0, 0, 1);
  const std::vector<float> back = codec->decode(enc, base);
  ASSERT_EQ(residual.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(residual[i], w[i] - back[i], 1e-6) << "i=" << i;

  // Second round: the carried residual is folded into the next encode, so a
  // coordinate dropped twice accumulates until it wins top-k selection.
  const std::vector<float> w2 = w;
  std::vector<float> residual2 = residual;
  const CompressedUpdate enc2 = codec->encode(w2, base, &residual2, 0, 1, 1);
  const std::vector<float> back2 = codec->decode(enc2, base);
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(residual2[i], (w2[i] + residual[i]) - back2[i], 1e-6);
}

TEST(CodecTest, DecodeRejectsOutOfRangeTopKIndex) {
  const auto codec = make_codec(topk_config(0.5, 32, false));
  const std::vector<float> base(4, 0.0f);
  CompressedUpdate enc =
      codec->encode({1.0f, 2.0f, 3.0f, 4.0f}, base, nullptr, 0, 0, 1);
  enc.payload[0] = '\x09';  // first stored index -> 9, out of range for dim 4
  EXPECT_THROW(codec->decode(enc, base), Error);
}

TEST(CodecTest, DecodeRejectsDimMismatch) {
  const auto codec = make_codec(quantize_config(8));
  const std::vector<float> base(16, 0.0f);
  const CompressedUpdate enc =
      codec->encode(random_vector(16, 1), base, nullptr, 0, 0, 1);
  EXPECT_THROW(codec->decode(enc, std::vector<float>(15, 0.0f)), Error);
}

// --- byte accounting ---------------------------------------------------------

TEST(ByteAccountingTest, UploadWireBytesMatchesCodecs) {
  const std::size_t dim = 1000;
  CompressionConfig off;
  EXPECT_EQ(upload_wire_bytes(off, 0, dim), transfer_bytes(dim, 0));
  EXPECT_EQ(upload_wire_bytes(off, 8, dim), transfer_bytes(dim, 8));
  for (const auto& config : {quantize_config(8), quantize_config(3),
                             topk_config(0.1, 32), topk_config(0.1, 4)}) {
    const auto codec = make_codec(config);
    EXPECT_EQ(upload_wire_bytes(config, 0, dim), codec->encoded_bytes_for(dim))
        << codec->name() << " bits=" << config.bits;
  }
}

}  // namespace
}  // namespace seafl::compress
