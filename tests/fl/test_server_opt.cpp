#include <gtest/gtest.h>

#include "fl/server_opt.h"
#include "fl/strategies.h"

namespace seafl {
namespace {

LocalUpdate make_update(ModelVector weights) {
  LocalUpdate u;
  u.weights = std::move(weights);
  u.num_samples = 10;
  u.epochs_completed = 5;
  return u;
}

AggregationContext make_ctx(const ModelVector& global,
                            std::span<const LocalUpdate> buffer) {
  AggregationContext ctx;
  ctx.round = 1;
  ctx.global = &global;
  for (const auto& u : buffer) ctx.total_samples += u.num_samples;
  return ctx;
}

StrategyPtr fedavg() { return std::make_unique<FedAvgStrategy>(); }

TEST(ServerOptTest, SgdWithUnitLrMatchesInnerStrategy) {
  ServerOptStrategy wrapped(fedavg(),
                            {.kind = ServerOpt::kSgd, .lr = 1.0});
  FedAvgStrategy plain;

  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update({4.0f, -2.0f}));
  ModelVector a{1.0f, 1.0f}, b{1.0f, 1.0f};
  wrapped.aggregate(make_ctx(a, buffer), buffer, a);
  plain.aggregate(make_ctx(b, buffer), buffer, b);
  EXPECT_FLOAT_EQ(a[0], b[0]);
  EXPECT_FLOAT_EQ(a[1], b[1]);
}

TEST(ServerOptTest, SgdWithHalfLrMovesHalfway) {
  ServerOptStrategy wrapped(fedavg(),
                            {.kind = ServerOpt::kSgd, .lr = 0.5});
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update({5.0f}));
  ModelVector global{1.0f};
  wrapped.aggregate(make_ctx(global, buffer), buffer, global);
  EXPECT_FLOAT_EQ(global[0], 3.0f);  // halfway from 1 toward 5
}

TEST(ServerOptTest, MomentumAccumulatesAcrossRounds) {
  ServerOptStrategy wrapped(
      fedavg(), {.kind = ServerOpt::kMomentum, .lr = 1.0, .beta1 = 0.5});
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update({0.0f}));  // proposal always 0
  ModelVector global{1.0f};
  // Round 1: g = 1 - 0 = 1; v = 1; w = 0.
  wrapped.aggregate(make_ctx(global, buffer), buffer, global);
  EXPECT_FLOAT_EQ(global[0], 0.0f);
  // Round 2: g = 0; v = 0.5; w = -0.5 (momentum overshoot).
  wrapped.aggregate(make_ctx(global, buffer), buffer, global);
  EXPECT_FLOAT_EQ(global[0], -0.5f);
}

TEST(ServerOptTest, AdamFirstStepIsLrSized) {
  // With bias correction, the first Adam step has magnitude ~lr regardless
  // of gradient scale.
  ServerOptStrategy wrapped(
      fedavg(),
      {.kind = ServerOpt::kAdam, .lr = 0.1, .beta1 = 0.9, .beta2 = 0.99});
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update({100.0f}));
  ModelVector global{0.0f};
  wrapped.aggregate(make_ctx(global, buffer), buffer, global);
  // g = -100; step = -lr * sign-ish => +0.1 toward the proposal.
  EXPECT_NEAR(global[0], 0.1f, 1e-4);
}

TEST(ServerOptTest, AdamConvergesTowardStationaryProposal) {
  ServerOptStrategy wrapped(
      fedavg(), {.kind = ServerOpt::kAdam, .lr = 0.5});
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update({2.0f}));
  ModelVector global{0.0f};
  for (int i = 0; i < 200; ++i)
    wrapped.aggregate(make_ctx(global, buffer), buffer, global);
  EXPECT_NEAR(global[0], 2.0f, 0.1f);
}

TEST(ServerOptTest, NameComposesInnerAndOptimizer) {
  EXPECT_EQ(ServerOptStrategy(fedavg(), {.kind = ServerOpt::kMomentum})
                .name(),
            "FedAvg+AvgM");
  EXPECT_EQ(
      ServerOptStrategy(std::make_unique<FedBuffStrategy>(),
                        {.kind = ServerOpt::kAdam})
          .name(),
      "FedBuff+Adam");
}

TEST(ServerOptTest, RejectsInvalidConfig) {
  EXPECT_THROW(ServerOptStrategy(nullptr, {}), Error);
  EXPECT_THROW(ServerOptStrategy(fedavg(), {.lr = 0.0}), Error);
  EXPECT_THROW(ServerOptStrategy(fedavg(), {.beta1 = 1.0}), Error);
  EXPECT_THROW(ServerOptStrategy(fedavg(), {.beta2 = 1.5}), Error);
  EXPECT_THROW(ServerOptStrategy(fedavg(), {.epsilon = 0.0}), Error);
}

}  // namespace
}  // namespace seafl
