#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fl/compression.h"

namespace seafl {
namespace {

ModelVector random_model(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  ModelVector w(n);
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, 0.5));
  return w;
}

TEST(QuantizeTest, ErrorWithinHalfStep) {
  for (const std::size_t bits : {2ul, 4ul, 8ul, 12ul}) {
    ModelVector w = random_model(500, bits);
    const ModelVector original = w;
    const double bound = quantization_error_bound(w, bits);
    quantize_model(w, bits);
    for (std::size_t i = 0; i < w.size(); ++i) {
      ASSERT_LE(std::abs(static_cast<double>(w[i]) - original[i]),
                bound + 1e-6)
          << "bits=" << bits << " index " << i;
    }
  }
}

TEST(QuantizeTest, MoreBitsMeansLessError) {
  const ModelVector original = random_model(1000, 7);
  double prev_error = 1e9;
  for (const std::size_t bits : {2ul, 4ul, 8ul, 12ul}) {
    ModelVector w = original;
    quantize_model(w, bits);
    double err = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i)
      err += std::abs(static_cast<double>(w[i]) - original[i]);
    EXPECT_LT(err, prev_error);
    prev_error = err;
  }
}

TEST(QuantizeTest, ExtremesAreRepresentable) {
  // The maximum-magnitude element must survive nearly unchanged (it sits on
  // the grid boundary by construction).
  ModelVector w{1.0f, -1.0f, 0.3f, 0.0f};
  quantize_model(w, 8);
  EXPECT_NEAR(w[0], 1.0f, 1e-6);
  EXPECT_NEAR(w[1], -1.0f, 1e-6);
  EXPECT_NEAR(w[3], 0.0f, 1e-9);
}

TEST(QuantizeTest, IdempotentOnGridValues) {
  ModelVector w = random_model(100, 9);
  quantize_model(w, 6);
  ModelVector again = w;
  quantize_model(again, 6);
  EXPECT_EQ(w, again);
}

TEST(QuantizeTest, AllZeroVectorIsNoop) {
  ModelVector w(10, 0.0f);
  EXPECT_DOUBLE_EQ(quantize_model(w, 8), 0.0);
  for (const float v : w) EXPECT_EQ(v, 0.0f);
}

TEST(QuantizeTest, RejectsBadBitWidths) {
  ModelVector w{1.0f};
  EXPECT_THROW(quantize_model(w, 1), Error);
  EXPECT_THROW(quantize_model(w, 17), Error);
}

TEST(TransferBytesTest, CompressionRatio) {
  // Counts now include the container header: 20 bytes for a plain SEAFLMDL
  // float32 upload, 32 for a packed SEAFLCMP one (src/compress).
  EXPECT_EQ(transfer_bytes(1000, 0), 4020u);  // float32
  EXPECT_EQ(transfer_bytes(1000, 8), 1032u);  // ~4x smaller
  EXPECT_EQ(transfer_bytes(1000, 4), 532u);
  EXPECT_EQ(transfer_bytes(3, 2), 33u);  // rounds up to whole bytes
  EXPECT_THROW(transfer_bytes(10, 1), Error);
}

}  // namespace
}  // namespace seafl
