// Durable checkpoint/resume (DESIGN.md §15): the split-run contract. A run
// that executes N rounds straight must be bitwise identical — final
// weights, every counter, every curve point — to a run that executes N/2
// rounds, writes a checkpoint, dies, and is resumed by a *fresh* Simulation
// from the file. Exercised across the executors (lazy/eager), compression
// codecs (with error feedback), churn + deadlines, SEAFL^2 notifications
// and server-side optimizer state, since each drags different state into
// the checkpoint.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "ckpt/store.h"
#include "core/seafl.h"

namespace seafl {
namespace {

namespace fs = std::filesystem;

struct Fixture {
  FlTask task;
  ModelFactory factory;
  FleetConfig fleet_config;
  std::string dir;

  explicit Fixture(const std::string& tag) {
    TaskSpec spec;
    spec.name = "synth-mnist";
    spec.num_clients = 12;
    spec.samples_per_client = 15;
    spec.test_samples = 60;
    task = make_task(spec);
    factory = make_model(task.default_model, task.input, task.num_classes);
    fleet_config.num_devices = 12;
    fleet_config.pareto_shape = 1.5;
    fleet_config.seed = 7;
    dir = (fs::temp_directory_path() / ("seafl_resume_test_" + tag)).string();
    fs::remove_all(dir);
  }
  ~Fixture() { fs::remove_all(dir); }

  ExperimentParams base_params() const {
    ExperimentParams p;
    p.buffer_size = 3;
    p.concurrency = 6;
    p.local_epochs = 2;
    p.batch_size = 8;
    p.max_rounds = 8;
    p.stop_at_target = false;
    p.seed = 42;
    return p;
  }

  /// One run of `algo` with the checkpoint knobs applied; `resume` starts
  /// from the newest checkpoint in `dir` instead of round 0.
  template <typename Tweak>
  RunResult run(const std::string& algo, const ExperimentParams& params,
                Tweak tweak, std::uint64_t every, std::uint64_t halt,
                bool resume) const {
    Arm arm = make_arm(algo, params);
    tweak(arm.config);
    arm.config.checkpoint_every_rounds = every;
    arm.config.checkpoint_dir = every > 0 ? dir : "";
    arm.config.halt_after_rounds = halt;
    Fleet fleet(fleet_config);
    Simulation sim(task, factory, fleet, std::move(arm.strategy), arm.config);
    return resume ? sim.resume_from_dir(dir) : sim.run();
  }
};

void expect_bitwise_equal(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size());
  EXPECT_EQ(std::memcmp(a.final_weights.data(), b.final_weights.data(),
                        a.final_weights.size() * sizeof(float)),
            0);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].time, b.curve[i].time) << "curve point " << i;
    EXPECT_EQ(a.curve[i].round, b.curve[i].round);
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy) << "curve point " << i;
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss);
  }
  ASSERT_EQ(a.round_log.size(), b.round_log.size());
  for (std::size_t i = 0; i < a.round_log.size(); ++i) {
    EXPECT_EQ(a.round_log[i].round, b.round_log[i].round);
    EXPECT_EQ(a.round_log[i].time, b.round_log[i].time) << "round " << i;
    EXPECT_EQ(a.round_log[i].updates, b.round_log[i].updates);
    EXPECT_EQ(a.round_log[i].mean_staleness, b.round_log[i].mean_staleness);
    EXPECT_EQ(a.round_log[i].partial, b.round_log[i].partial);
  }
  EXPECT_EQ(a.participation, b.participation);
  EXPECT_EQ(a.time_to_target, b.time_to_target);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_EQ(a.partial_updates, b.partial_updates);
  EXPECT_EQ(a.model_downloads, b.model_downloads);
  EXPECT_EQ(a.model_uploads, b.model_uploads);
  EXPECT_EQ(a.notifications, b.notifications);
  EXPECT_EQ(a.lost_uploads, b.lost_uploads);
  EXPECT_EQ(a.aggregations, b.aggregations);
  EXPECT_EQ(a.server_aggregation_work, b.server_aggregation_work);
  EXPECT_EQ(a.dropped_updates, b.dropped_updates);
  EXPECT_EQ(a.stale_waits, b.stale_waits);
  EXPECT_EQ(a.mean_staleness, b.mean_staleness);
  EXPECT_EQ(a.client_crashes, b.client_crashes);
  EXPECT_EQ(a.deadline_expirations, b.deadline_expirations);
  EXPECT_EQ(a.redispatches, b.redispatches);
  EXPECT_EQ(a.abandoned_slots, b.abandoned_slots);
  EXPECT_EQ(a.upload_retries, b.upload_retries);
  EXPECT_EQ(a.degraded_aggregations, b.degraded_aggregations);
  EXPECT_EQ(a.screened_updates, b.screened_updates);
  EXPECT_EQ(a.clipped_updates, b.clipped_updates);
  EXPECT_EQ(a.speculation_cut, b.speculation_cut);
  EXPECT_EQ(a.speculation_wasted, b.speculation_wasted);
  EXPECT_EQ(a.upload_wire_bytes, b.upload_wire_bytes);
  EXPECT_EQ(a.upload_raw_bytes, b.upload_raw_bytes);
}

/// The acceptance check: straight N rounds vs halt-at-N/2 + fresh-process
/// resume, bitwise.
template <typename Tweak>
void check_split_equality(const Fixture& f, const std::string& algo,
                          const ExperimentParams& params, Tweak tweak) {
  const std::uint64_t half = params.max_rounds / 2;
  const RunResult straight = f.run(algo, params, tweak, 0, 0, false);
  const RunResult leg1 = f.run(algo, params, tweak, half, half, false);
  EXPECT_EQ(leg1.rounds, half);
  const RunResult resumed = f.run(algo, params, tweak, 0, 0, true);
  EXPECT_EQ(resumed.rounds, params.max_rounds);
  expect_bitwise_equal(straight, resumed);
}

void no_tweak(RunConfig&) {}

TEST(CheckpointResume, LazyRunSplitsBitwise) {
  const Fixture f("lazy");
  check_split_equality(f, "seafl", f.base_params(), no_tweak);
}

TEST(CheckpointResume, EagerExecutorSplitsBitwise) {
  const Fixture f("eager");
  ExperimentParams p = f.base_params();
  p.eager_training = true;
  p.sim_jobs = 2;
  check_split_equality(f, "seafl", p, no_tweak);
}

TEST(CheckpointResume, Int8CompressionSplitsBitwise) {
  const Fixture f("int8");
  ExperimentParams p = f.base_params();
  p.codec = "int8";
  check_split_equality(f, "seafl", p, no_tweak);
}

TEST(CheckpointResume, TopKErrorFeedbackSplitsBitwise) {
  // Error feedback carries per-client residual vectors across rounds; the
  // checkpoint must restore every residual or the resumed leg diverges.
  const Fixture f("topk");
  ExperimentParams p = f.base_params();
  p.codec = "topk";
  p.topk_fraction = 0.25;
  p.error_feedback = true;
  check_split_equality(f, "seafl", p, no_tweak);
}

TEST(CheckpointResume, ChurnAndDeadlinesSplitBitwise) {
  // Device churn + per-assignment deadlines + round-deadline degradation:
  // the checkpoint carries crashed sessions, pending deadline events and
  // the dropout-draw counter.
  const Fixture f("churn");
  const ExperimentParams p = f.base_params();
  const auto tweak = [](RunConfig& c) {
    c.faults.mean_uptime = 120.0;
    c.faults.mean_downtime = 30.0;
    c.faults.deadline_factor = 2.0;
    c.faults.max_upload_retries = 1;
    c.faults.round_deadline = 300.0;
    c.faults.min_updates = 1;
    c.upload_loss_prob = 0.2;
  };
  // The hazard must actually bite, or the test collapses into the clean one.
  const RunResult probe = f.run("seafl", p, tweak, 0, 0, false);
  ASSERT_GT(probe.client_crashes + probe.lost_uploads, 0u);
  check_split_equality(f, "seafl", p, tweak);
}

TEST(CheckpointResume, DiurnalScheduleSplitsBitwise) {
  const Fixture f("diurnal");
  const ExperimentParams p = f.base_params();
  const auto tweak = [](RunConfig& c) {
    c.faults.diurnal_period = 400.0;
    c.faults.diurnal_online_fraction = 0.6;
    c.faults.deadline_factor = 2.0;
  };
  check_split_equality(f, "seafl", p, tweak);
}

TEST(CheckpointResume, Seafl2NotificationsSplitBitwise) {
  // SEAFL^2 schedules notify events for stale sessions; those pending
  // events must replay with their original tie order after a resume.
  const Fixture f("seafl2");
  ExperimentParams p = f.base_params();
  p.staleness_limit = 1;
  const RunResult probe = f.run("seafl2", p, no_tweak, 0, 0, false);
  ASSERT_GT(probe.notifications, 0u);
  check_split_equality(f, "seafl2", p, no_tweak);
}

TEST(CheckpointResume, ServerOptimizerStateSplitsBitwise) {
  // FedBuff+Adam keeps first/second moments on the server; they ride in the
  // opaque strategy-state section.
  const Fixture f("adam");
  check_split_equality(f, "fedbuff-adam", f.base_params(), no_tweak);
}

TEST(CheckpointResume, ScreenedStrategySplitsBitwise) {
  // seafl-ft wraps SEAFL in screening; its reference-update state and the
  // recovery machinery all have to survive the restore.
  const Fixture f("ft");
  const ExperimentParams p = f.base_params();
  const auto tweak = [](RunConfig& c) {
    c.faults.mean_uptime = 150.0;
    c.faults.mean_downtime = 40.0;
  };
  check_split_equality(f, "seafl-ft", p, tweak);
}

TEST(CheckpointResume, CheckpointWritesDoNotPerturbTheRun) {
  // Observation-only contract: checkpointing on (without halting) is
  // invisible in the results, eager executor included.
  const Fixture f("observe");
  ExperimentParams p = f.base_params();
  p.eager_training = true;
  p.sim_jobs = 2;
  const RunResult off = f.run("seafl", p, no_tweak, 0, 0, false);
  const RunResult on = f.run("seafl", p, no_tweak, 2, 0, false);
  expect_bitwise_equal(off, on);
  // And it actually wrote checkpoints while doing so.
  EXPECT_FALSE(ckpt::list_checkpoint_rounds(f.dir).empty());
}

TEST(CheckpointResume, RetentionHonorsKeepDuringARun) {
  const Fixture f("keep");
  ExperimentParams p = f.base_params();
  Arm arm = make_arm("seafl", p);
  arm.config.checkpoint_every_rounds = 1;
  arm.config.checkpoint_dir = f.dir;
  arm.config.checkpoint_keep = 2;
  Fleet fleet(f.fleet_config);
  Simulation sim(f.task, f.factory, fleet, std::move(arm.strategy),
                 arm.config);
  sim.run();
  EXPECT_EQ(ckpt::list_checkpoint_rounds(f.dir),
            (std::vector<std::uint64_t>{6, 7}));
}

TEST(CheckpointResume, ResumeRejectsMismatchedIdentity) {
  // A checkpoint from seed 42 must not restore into a seed-43 run: the
  // RNG streams would silently diverge from both runs.
  const Fixture f("identity");
  const ExperimentParams p = f.base_params();
  f.run("seafl", p, no_tweak, 4, 4, false);
  ExperimentParams other = p;
  other.seed = 43;
  EXPECT_THROW(f.run("seafl", other, no_tweak, 0, 0, true), Error);
}

TEST(CheckpointResume, CheckpointingRequiresADirectory) {
  const Fixture f("validate");
  Arm arm = make_arm("seafl", f.base_params());
  arm.config.checkpoint_every_rounds = 2;
  arm.config.checkpoint_dir = "";  // invalid: nowhere to write
  Fleet fleet(f.fleet_config);
  EXPECT_THROW(Simulation(f.task, f.factory, fleet, std::move(arm.strategy),
                          arm.config),
               Error);
}

TEST(CheckpointResume, ResumeFromEmptyDirectoryThrows) {
  const Fixture f("empty");
  Arm arm = make_arm("seafl", f.base_params());
  Fleet fleet(f.fleet_config);
  Simulation sim(f.task, f.factory, fleet, std::move(arm.strategy),
                 arm.config);
  EXPECT_THROW(sim.resume_from_dir(f.dir), Error);
}

}  // namespace
}  // namespace seafl
