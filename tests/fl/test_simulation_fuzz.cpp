// Randomized-configuration harness: arbitrary (valid) RunConfig draws must
// complete without violating the simulation's core invariants. Catches
// interactions between features (waiting x partial x adaptive epochs x
// dropout x quantization x selection) that targeted tests do not cross.
#include <gtest/gtest.h>

#include "core/seafl.h"

namespace seafl {
namespace {

class SimulationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationFuzz, RandomConfigsPreserveInvariants) {
  Rng rng(GetParam());

  TaskSpec spec;
  spec.name = "synth-mnist";
  spec.num_clients = 16;
  spec.samples_per_client = 10;
  spec.test_samples = 40;
  spec.seed = GetParam();
  spec.corrupt_client_fraction = rng.bernoulli(0.3) ? 0.2 : 0.0;
  const FlTask task = make_task(spec);

  FleetConfig fc;
  fc.num_devices = spec.num_clients;
  fc.pareto_shape = rng.uniform(1.05, 2.0);
  fc.seed = spec.seed;
  const Fleet fleet(fc);

  for (int trial = 0; trial < 6; ++trial) {
    RunConfig c;
    c.concurrency = static_cast<std::size_t>(rng.uniform_int(2, 12));
    c.buffer_size = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(c.concurrency)));
    c.local_epochs = static_cast<std::size_t>(rng.uniform_int(1, 4));
    c.batch_size = static_cast<std::size_t>(rng.uniform_int(2, 10));
    c.sgd.learning_rate = static_cast<float>(rng.uniform(0.01, 0.1));
    c.sgd.clip_norm = rng.bernoulli(0.5) ? 5.0f : 0.0f;
    c.max_rounds = 6;
    c.target_accuracy = 2.0;  // never stop early
    c.stop_at_target = false;
    c.eval_subset = 20;
    c.eval_every = static_cast<std::uint64_t>(rng.uniform_int(1, 3));
    c.seed = rng();

    // Random protocol features.
    const int staleness_mode = static_cast<int>(rng.uniform_int(4));
    if (staleness_mode == 1) {
      c.staleness_limit = static_cast<std::uint64_t>(rng.uniform_int(1, 5));
      c.wait_for_stale = true;
    } else if (staleness_mode == 2) {
      c.staleness_limit = static_cast<std::uint64_t>(rng.uniform_int(1, 5));
      c.partial_training = true;
    } else if (staleness_mode == 3) {
      c.staleness_limit = static_cast<std::uint64_t>(rng.uniform_int(0, 5));
      c.drop_stale = true;
    }
    c.adaptive_epochs = rng.bernoulli(0.3);
    c.submodel_training = rng.bernoulli(0.3);
    c.upload_loss_prob = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.4) : 0.0;
    c.quantize_bits =
        rng.bernoulli(0.3) ? static_cast<std::size_t>(rng.uniform_int(6, 12))
                           : 0;
    c.proximal_mu = rng.bernoulli(0.2) ? 0.1 : 0.0;
    c.selection = static_cast<SelectionPolicy>(rng.uniform_int(3));
    const bool sync = rng.bernoulli(0.25);
    if (sync) {
      c.mode = FlMode::kSync;
      c.wait_for_stale = c.partial_training = c.drop_stale = false;
    }

    StrategyPtr strategy;
    if (rng.bernoulli(0.5)) {
      SeaflConfig sc;
      sc.weights.staleness_limit = c.staleness_limit;
      sc.full_epochs = c.local_epochs;
      strategy = std::make_unique<SeaflStrategy>(sc);
    } else {
      strategy = std::make_unique<FedBuffStrategy>();
    }

    const ModelFactory factory =
        make_model(task.default_model, task.input, task.num_classes);
    Simulation sim(task, factory, fleet, std::move(strategy), c);
    const RunResult r = sim.run();

    // --- invariants ---------------------------------------------------------
    ASSERT_EQ(r.rounds, c.max_rounds) << "trial " << trial;
    ASSERT_EQ(r.round_log.size(), r.rounds);
    ASSERT_EQ(r.aggregations, r.rounds);
    std::size_t updates = 0;
    double prev_time = -1.0;
    for (const auto& s : r.round_log) {
      ASSERT_GE(s.time, prev_time);
      prev_time = s.time;
      ASSERT_GE(s.updates, 1u);
      ASSERT_GE(s.mean_staleness, 0.0);
      updates += s.updates;
    }
    ASSERT_EQ(updates, r.total_updates);
    ASSERT_GE(r.model_uploads, r.total_updates);
    ASSERT_EQ(r.final_weights.size(),
              factory()->num_parameters());
    for (const float wgt : r.final_weights) ASSERT_TRUE(std::isfinite(wgt));
    std::size_t participation_total = 0;
    for (const auto p : r.participation) participation_total += p;
    ASSERT_EQ(participation_total, r.total_updates);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationFuzz,
                         ::testing::Values(5, 23, 101, 747, 31337));

}  // namespace
}  // namespace seafl
