#include <gtest/gtest.h>

#include "core/seafl_strategy.h"
#include "fl/simulation.h"
#include "fl/strategies.h"

namespace seafl {
namespace {

/// Small task + fleet shared across simulation tests.
struct Fixture {
  FlTask task;
  ModelFactory factory;
  FleetConfig fleet_config;

  explicit Fixture(double pareto_shape = 1.5) {
    TaskSpec spec;
    spec.name = "synth-mnist";
    spec.num_clients = 12;
    spec.samples_per_client = 15;
    spec.test_samples = 60;
    task = make_task(spec);
    factory = make_model(task.default_model, task.input, task.num_classes);
    fleet_config.num_devices = 12;
    fleet_config.pareto_shape = pareto_shape;
    fleet_config.seed = 7;
  }

  RunConfig base_config() const {
    RunConfig c;
    c.buffer_size = 3;
    c.concurrency = 6;
    c.local_epochs = 2;
    c.batch_size = 8;
    c.sgd.learning_rate = 0.05f;
    c.max_rounds = 12;
    c.target_accuracy = 0.99;  // effectively unreachable in 12 rounds
    c.stop_at_target = false;
    c.seed = 42;
    return c;
  }
};

RunResult run(const Fixture& f, StrategyPtr strategy, const RunConfig& c) {
  Fleet fleet(f.fleet_config);
  Simulation sim(f.task, f.factory, fleet, std::move(strategy), c);
  return sim.run();
}

TEST(SimulationTest, SemiAsyncRunsToRoundLimit) {
  Fixture f;
  const auto r = run(f, std::make_unique<FedBuffStrategy>(), f.base_config());
  EXPECT_EQ(r.rounds, 12u);
  EXPECT_GE(r.total_updates, 12u * 3u);
  EXPECT_GT(r.final_time, 0.0);
  ASSERT_GE(r.curve.size(), 2u);
  EXPECT_EQ(r.curve.front().round, 0u);
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GE(r.curve[i].time, r.curve[i - 1].time);
    EXPECT_EQ(r.curve[i].round, r.curve[i - 1].round + 1);
  }
}

TEST(SimulationTest, RunsAreDeterministic) {
  Fixture f;
  const auto a = run(f, std::make_unique<FedBuffStrategy>(), f.base_config());
  const auto b = run(f, std::make_unique<FedBuffStrategy>(), f.base_config());
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].time, b.curve[i].time);
    EXPECT_DOUBLE_EQ(a.curve[i].accuracy, b.curve[i].accuracy);
  }
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_DOUBLE_EQ(a.mean_staleness, b.mean_staleness);
}

TEST(SimulationTest, LearningActuallyHappens) {
  Fixture f;
  RunConfig c = f.base_config();
  c.max_rounds = 25;
  const auto r = run(f, std::make_unique<FedBuffStrategy>(), c);
  EXPECT_GT(r.final_accuracy, r.curve.front().accuracy + 0.3);
}

TEST(SimulationTest, SyncModeHasZeroStaleness) {
  Fixture f;
  RunConfig c = f.base_config();
  c.mode = FlMode::kSync;
  c.max_rounds = 5;
  const auto r = run(f, std::make_unique<FedAvgStrategy>(), c);
  EXPECT_EQ(r.rounds, 5u);
  EXPECT_DOUBLE_EQ(r.mean_staleness, 0.0);
  // Every round consumes the full cohort.
  EXPECT_EQ(r.total_updates, 5u * c.concurrency);
}

TEST(SimulationTest, FullyAsyncBufferOfOne) {
  Fixture f;
  RunConfig c = f.base_config();
  c.buffer_size = 1;
  c.max_rounds = 20;
  const auto r = run(f, std::make_unique<FedAsyncStrategy>(), c);
  EXPECT_EQ(r.rounds, 20u);
  EXPECT_EQ(r.total_updates, 20u);
}

TEST(SimulationTest, StopAtTargetHaltsEarly) {
  Fixture f;
  RunConfig c = f.base_config();
  c.target_accuracy = 0.15;  // trivially reachable
  c.stop_at_target = true;
  c.max_rounds = 50;
  const auto r = run(f, std::make_unique<FedBuffStrategy>(), c);
  EXPECT_GE(r.time_to_target, 0.0);
  EXPECT_LT(r.rounds, 50u);
  EXPECT_DOUBLE_EQ(r.final_time, r.time_to_target);
}

TEST(SimulationTest, MaxVirtualSecondsStopsRun) {
  Fixture f;
  RunConfig c = f.base_config();
  c.max_rounds = 100000;
  c.max_virtual_seconds = 200.0;
  const auto r = run(f, std::make_unique<FedBuffStrategy>(), c);
  EXPECT_LT(r.rounds, 100000u);
  EXPECT_GE(r.final_time, 200.0 * 0.5);
}

TEST(SimulationTest, WaitForStaleBoundsStaleness) {
  // Heavy-tailed fleet + tiny staleness limit: the server must wait, and no
  // aggregated update may exceed the limit.
  Fixture f(/*pareto_shape=*/1.05);
  RunConfig c = f.base_config();
  c.staleness_limit = 1;
  c.wait_for_stale = true;
  c.max_rounds = 15;

  SeaflConfig sc;
  sc.weights.staleness_limit = 1;
  sc.full_epochs = c.local_epochs;
  const auto r = run(f, std::make_unique<SeaflStrategy>(sc), c);
  EXPECT_GT(r.stale_waits, 0u);
  EXPECT_LE(r.mean_staleness, 1.0 + 1e-9);
}

TEST(SimulationTest, PartialTrainingProducesPartialUpdates) {
  Fixture f(/*pareto_shape=*/1.05);
  RunConfig c = f.base_config();
  c.staleness_limit = 1;
  c.wait_for_stale = true;
  c.partial_training = true;
  c.local_epochs = 4;
  c.max_rounds = 15;

  SeaflConfig sc;
  sc.weights.staleness_limit = 1;
  sc.full_epochs = c.local_epochs;
  const auto r = run(f, std::make_unique<SeaflStrategy>(sc), c);
  EXPECT_GT(r.partial_updates, 0u);
}

TEST(SimulationTest, PartialTrainingFinishesFasterThanWaiting) {
  // SEAFL^2's entire point: notifying stragglers shortens stale waits, so
  // the same number of rounds completes in less virtual time.
  Fixture f(/*pareto_shape=*/1.05);
  RunConfig waiting = f.base_config();
  waiting.staleness_limit = 1;
  waiting.wait_for_stale = true;
  waiting.local_epochs = 4;
  waiting.max_rounds = 12;

  RunConfig partial = waiting;
  partial.partial_training = true;

  SeaflConfig sc;
  sc.weights.staleness_limit = 1;
  sc.full_epochs = 4;

  const auto slow = run(f, std::make_unique<SeaflStrategy>(sc), waiting);
  const auto fast = run(f, std::make_unique<SeaflStrategy>(sc), partial);
  EXPECT_EQ(slow.rounds, fast.rounds);
  EXPECT_LT(fast.final_time, slow.final_time);
}

TEST(SimulationTest, DropStaleDiscardsUpdates) {
  Fixture f(/*pareto_shape=*/1.05);
  RunConfig c = f.base_config();
  c.staleness_limit = 0;  // everything with staleness > 0 is dropped
  c.drop_stale = true;
  c.max_rounds = 10;
  const auto r = run(f, std::make_unique<FedBuffStrategy>(), c);
  EXPECT_GT(r.dropped_updates, 0u);
}

TEST(SimulationTest, InvalidConfigsRejected) {
  Fixture f;
  Fleet fleet(f.fleet_config);

  RunConfig c = f.base_config();
  c.buffer_size = 10;  // exceeds concurrency 6
  EXPECT_THROW(Simulation(f.task, f.factory, fleet,
                          std::make_unique<FedBuffStrategy>(), c),
               Error);

  c = f.base_config();
  c.wait_for_stale = c.drop_stale = true;
  EXPECT_THROW(Simulation(f.task, f.factory, fleet,
                          std::make_unique<FedBuffStrategy>(), c),
               Error);

  c = f.base_config();
  EXPECT_THROW(
      Simulation(f.task, f.factory, fleet, nullptr, c),
      Error);

  FleetConfig tiny = f.fleet_config;
  tiny.num_devices = 2;  // fewer devices than clients
  Fleet small(tiny);
  EXPECT_THROW(Simulation(f.task, f.factory, small,
                          std::make_unique<FedBuffStrategy>(),
                          f.base_config()),
               Error);

  for (const std::size_t bits : {1, 17}) {
    c = f.base_config();
    c.quantize_bits = bits;  // valid range is 0 or [2, 16]
    EXPECT_THROW(Simulation(f.task, f.factory, fleet,
                            std::make_unique<FedBuffStrategy>(), c),
                 Error);
  }

  c = f.base_config();
  c.upload_loss_prob = 1.0;  // a certain loss can never complete
  EXPECT_THROW(Simulation(f.task, f.factory, fleet,
                          std::make_unique<FedBuffStrategy>(), c),
               Error);

  c = f.base_config();
  c.faults.deadline_factor = 0.5;  // < 1 would expire healthy clients
  EXPECT_THROW(Simulation(f.task, f.factory, fleet,
                          std::make_unique<FedBuffStrategy>(), c),
               Error);

  c = f.base_config();
  c.faults.max_upload_retries = 2;
  c.faults.retry_backoff = 0.0;
  EXPECT_THROW(Simulation(f.task, f.factory, fleet,
                          std::make_unique<FedBuffStrategy>(), c),
               Error);

  c = f.base_config();
  c.faults.max_upload_retries = 2;
  c.faults.retry_backoff_cap = 0.1;  // below retry_backoff
  EXPECT_THROW(Simulation(f.task, f.factory, fleet,
                          std::make_unique<FedBuffStrategy>(), c),
               Error);

  c = f.base_config();
  c.faults.round_deadline = 100.0;
  c.faults.min_updates = c.buffer_size + 1;  // can never trigger
  EXPECT_THROW(Simulation(f.task, f.factory, fleet,
                          std::make_unique<FedBuffStrategy>(), c),
               Error);

  c = f.base_config();
  c.faults.mean_uptime = 50.0;
  c.faults.mean_downtime = 0.0;  // churn enabled but no recovery interval
  EXPECT_THROW(Simulation(f.task, f.factory, fleet,
                          std::make_unique<FedBuffStrategy>(), c),
               Error);
}

TEST(SimulationTest, OverheadAccountingIsConsistent) {
  Fixture f;
  const RunConfig c = f.base_config();
  const auto r = run(f, std::make_unique<FedBuffStrategy>(), c);
  // Every consumed update was uploaded; uploads can exceed consumption only
  // when the run stops with a non-empty buffer.
  EXPECT_GE(r.model_uploads, r.total_updates);
  EXPECT_LE(r.model_uploads - r.total_updates, c.concurrency);
  // Initial cohort + one rebroadcast per consumed update, except the final
  // round's reporters (the run stops before rebroadcasting to them).
  ASSERT_FALSE(r.round_log.empty());
  EXPECT_EQ(r.model_downloads,
            c.concurrency + r.total_updates - r.round_log.back().updates);
  EXPECT_EQ(r.aggregations, r.rounds);
  EXPECT_EQ(r.notifications, 0u);  // no partial training configured
  EXPECT_GT(r.server_aggregation_work, 0.0);
}

TEST(SimulationTest, FedAsyncAggregatesPerUpdate) {
  // The overhead §II attributes to fully-async FL: one server aggregation
  // per upload, instead of one per K uploads.
  Fixture f;
  RunConfig c = f.base_config();
  c.buffer_size = 1;
  c.max_rounds = 20;
  const auto async = run(f, std::make_unique<FedAsyncStrategy>(), c);
  EXPECT_EQ(async.aggregations, async.total_updates);

  c.buffer_size = 5;
  c.max_rounds = 4;
  const auto buffered = run(f, std::make_unique<FedBuffStrategy>(), c);
  EXPECT_EQ(buffered.aggregations * 5, buffered.total_updates);
}

TEST(SimulationTest, RoundLogTracksEveryAggregation) {
  Fixture f;
  const auto r = run(f, std::make_unique<FedBuffStrategy>(), f.base_config());
  ASSERT_EQ(r.round_log.size(), r.rounds);
  std::size_t updates = 0;
  for (std::size_t i = 0; i < r.round_log.size(); ++i) {
    const auto& s = r.round_log[i];
    EXPECT_EQ(s.round, i + 1);
    EXPECT_GE(s.updates, f.base_config().buffer_size);
    EXPECT_GE(s.mean_staleness, 0.0);
    if (i > 0) {
      EXPECT_GE(s.time, r.round_log[i - 1].time);
    }
    updates += s.updates;
  }
  EXPECT_EQ(updates, r.total_updates);
}

TEST(SimulationTest, AdaptiveEpochsShortenSlowDeviceSessions) {
  Fixture f(/*pareto_shape=*/1.05);
  RunConfig c = f.base_config();
  c.adaptive_epochs = true;
  c.local_epochs = 4;
  c.max_rounds = 10;
  const auto adaptive = run(f, std::make_unique<FedBuffStrategy>(), c);
  c.adaptive_epochs = false;
  const auto fixed = run(f, std::make_unique<FedBuffStrategy>(), c);
  // Slow devices upload after fewer epochs, so the same number of rounds
  // finishes sooner and some uploads carry fewer than E epochs.
  EXPECT_EQ(adaptive.rounds, fixed.rounds);
  EXPECT_LT(adaptive.final_time, fixed.final_time);
  EXPECT_GT(adaptive.partial_updates, 0u);
}

TEST(SimulationTest, SubmodelTrainingSpeedsUpSlowDevices) {
  Fixture f(/*pareto_shape=*/1.05);
  RunConfig c = f.base_config();
  c.max_rounds = 10;
  c.submodel_training = true;
  c.submodel_slowdown_threshold = 1.5;
  const auto sub = run(f, std::make_unique<FedBuffStrategy>(), c);
  c.submodel_training = false;
  const auto full = run(f, std::make_unique<FedBuffStrategy>(), c);
  // Same rounds, but slow devices' epochs are cheaper, so virtual time drops.
  EXPECT_EQ(sub.rounds, full.rounds);
  EXPECT_LT(sub.final_time, full.final_time);
  // Learning still happens with frozen prefixes.
  EXPECT_GT(sub.final_accuracy, sub.curve.front().accuracy);
}

TEST(SimulationTest, UploadLossIsReplacedAndCounted) {
  Fixture f;
  RunConfig c = f.base_config();
  c.upload_loss_prob = 0.3;
  c.max_rounds = 10;
  const auto r = run(f, std::make_unique<FedBuffStrategy>(), c);
  // The run completes despite losses, and losses are visible.
  EXPECT_EQ(r.rounds, 10u);
  EXPECT_GT(r.lost_uploads, 0u);
  // Downloads exceed the lossless accounting by one per replacement.
  EXPECT_GT(r.model_downloads, c.concurrency + r.total_updates -
                                    r.round_log.back().updates);
}

TEST(SimulationTest, SyncModeSurvivesUploadLoss) {
  // Lost cohort members retry; the round must eventually complete even with
  // substantial loss rates (fresh draws per retry prevent livelock).
  Fixture f;
  RunConfig c = f.base_config();
  c.mode = FlMode::kSync;
  c.upload_loss_prob = 0.4;
  c.max_rounds = 4;
  const auto r = run(f, std::make_unique<FedAvgStrategy>(), c);
  EXPECT_EQ(r.rounds, 4u);
  EXPECT_GT(r.lost_uploads, 0u);
}

TEST(SimulationTest, UploadLossZeroMatchesBaseline) {
  Fixture f;
  RunConfig c = f.base_config();
  c.max_rounds = 6;
  const auto a = run(f, std::make_unique<FedBuffStrategy>(), c);
  c.upload_loss_prob = 0.0;
  const auto b = run(f, std::make_unique<FedBuffStrategy>(), c);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.lost_uploads, 0u);
}

TEST(SimulationTest, QuantizedUploadsStillLearn) {
  Fixture f;
  RunConfig c = f.base_config();
  c.quantize_bits = 8;
  c.max_rounds = 20;
  const auto quantized = run(f, std::make_unique<FedBuffStrategy>(), c);
  EXPECT_GT(quantized.final_accuracy,
            quantized.curve.front().accuracy + 0.3);
}

TEST(SimulationTest, CoarseQuantizationDegradesAccuracy) {
  Fixture f;
  RunConfig c = f.base_config();
  c.max_rounds = 15;
  const auto full = run(f, std::make_unique<FedBuffStrategy>(), c);
  c.quantize_bits = 2;  // three-level weights: brutal
  const auto coarse = run(f, std::make_unique<FedBuffStrategy>(), c);
  EXPECT_GT(full.final_accuracy, coarse.final_accuracy);
}

TEST(SimulationTest, EvalEveryThinsTheCurve) {
  Fixture f;
  RunConfig c = f.base_config();
  c.eval_every = 3;
  c.max_rounds = 12;
  const auto r = run(f, std::make_unique<FedBuffStrategy>(), c);
  // Rounds 0, 3, 6, 9, 12 -> 5 points.
  EXPECT_EQ(r.curve.size(), 5u);
}

TEST(SimulationTest, FinalWeightsMatchReportedAccuracy) {
  Fixture f;
  RunConfig c = f.base_config();
  c.max_rounds = 6;
  const auto r = run(f, std::make_unique<FedBuffStrategy>(), c);
  ASSERT_FALSE(r.final_weights.empty());
  // Re-evaluating the returned model must reproduce the recorded accuracy.
  Evaluator eval(f.task, f.factory, 64, c.eval_subset, c.seed);
  EXPECT_DOUBLE_EQ(eval.evaluate(r.final_weights).accuracy,
                   r.final_accuracy);
}

TEST(SimulationTest, FastestFirstSelectionLowersWallClock) {
  // Preferring fast devices must shorten synchronous rounds (no straggler
  // in the cohort) relative to random selection.
  Fixture f(/*pareto_shape=*/1.05);
  RunConfig c = f.base_config();
  c.mode = FlMode::kSync;
  c.max_rounds = 4;
  c.selection = SelectionPolicy::kFastestFirst;
  const auto fast = run(f, std::make_unique<FedAvgStrategy>(), c);
  c.selection = SelectionPolicy::kRandom;
  const auto random = run(f, std::make_unique<FedAvgStrategy>(), c);
  EXPECT_EQ(fast.rounds, random.rounds);
  EXPECT_LT(fast.final_time, random.final_time);
}

TEST(SimulationTest, SelectionPoliciesAreDeterministic) {
  Fixture f;
  for (const auto policy :
       {SelectionPolicy::kRandom, SelectionPolicy::kFastestFirst,
        SelectionPolicy::kDataWeighted}) {
    RunConfig c = f.base_config();
    c.max_rounds = 4;
    c.selection = policy;
    const auto a = run(f, std::make_unique<FedBuffStrategy>(), c);
    const auto b = run(f, std::make_unique<FedBuffStrategy>(), c);
    ASSERT_EQ(a.final_time, b.final_time);
    ASSERT_EQ(a.final_accuracy, b.final_accuracy);
  }
}

TEST(SimulationTest, StrategyNameIsExposed) {
  Fixture f;
  Fleet fleet(f.fleet_config);
  Simulation sim(f.task, f.factory, fleet,
                 std::make_unique<FedBuffStrategy>(), f.base_config());
  EXPECT_EQ(sim.strategy_name(), "FedBuff");
}

}  // namespace
}  // namespace seafl
