// The eager executor's contract (DESIGN.md §12): RunResult — down to
// final_weights, bit for bit — is invariant to eager_training on/off and to
// the sim_jobs cap, including under partial training (SEAFL^2 cuts),
// faults (abandoned speculations) and an attached trace sink.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/seafl_strategy.h"
#include "fl/simulation.h"
#include "fl/strategies.h"
#include "obs/trace.h"

namespace seafl {
namespace {

struct Fixture {
  FlTask task;
  ModelFactory factory;
  FleetConfig fleet_config;

  Fixture() {
    TaskSpec spec;
    spec.name = "synth-mnist";
    spec.num_clients = 12;
    spec.samples_per_client = 15;
    spec.test_samples = 60;
    task = make_task(spec);
    factory = make_model(task.default_model, task.input, task.num_classes);
    fleet_config.num_devices = 12;
    fleet_config.pareto_shape = 1.5;
    fleet_config.seed = 7;
  }

  RunConfig base_config() const {
    RunConfig c;
    c.buffer_size = 3;
    c.concurrency = 6;
    c.local_epochs = 2;
    c.batch_size = 8;
    c.sgd.learning_rate = 0.05f;
    c.max_rounds = 8;
    c.target_accuracy = 0.99;  // effectively unreachable
    c.stop_at_target = false;
    c.seed = 42;
    return c;
  }

  StrategyPtr strategy() const {
    return std::make_unique<FedBuffStrategy>();
  }

  RunResult run(const RunConfig& c, obs::TraceSink* trace = nullptr) const {
    Fleet fleet(fleet_config);
    Simulation sim(task, factory, fleet, strategy(), c);
    sim.set_trace_sink(trace);
    return sim.run();
  }
};

void expect_bitwise_equal(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size());
  EXPECT_EQ(std::memcmp(a.final_weights.data(), b.final_weights.data(),
                        a.final_weights.size() * sizeof(float)),
            0);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].time, b.curve[i].time);
    EXPECT_EQ(a.curve[i].round, b.curve[i].round);
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy);
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss);
  }
  ASSERT_EQ(a.round_log.size(), b.round_log.size());
  for (std::size_t i = 0; i < a.round_log.size(); ++i) {
    EXPECT_EQ(a.round_log[i].round, b.round_log[i].round);
    EXPECT_EQ(a.round_log[i].time, b.round_log[i].time);
    EXPECT_EQ(a.round_log[i].updates, b.round_log[i].updates);
    EXPECT_EQ(a.round_log[i].mean_staleness, b.round_log[i].mean_staleness);
    EXPECT_EQ(a.round_log[i].partial, b.round_log[i].partial);
  }
  EXPECT_EQ(a.participation, b.participation);
  EXPECT_EQ(a.time_to_target, b.time_to_target);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_EQ(a.partial_updates, b.partial_updates);
  EXPECT_EQ(a.model_downloads, b.model_downloads);
  EXPECT_EQ(a.model_uploads, b.model_uploads);
  EXPECT_EQ(a.notifications, b.notifications);
  EXPECT_EQ(a.lost_uploads, b.lost_uploads);
  EXPECT_EQ(a.aggregations, b.aggregations);
  EXPECT_EQ(a.server_aggregation_work, b.server_aggregation_work);
  EXPECT_EQ(a.dropped_updates, b.dropped_updates);
  EXPECT_EQ(a.stale_waits, b.stale_waits);
  EXPECT_EQ(a.mean_staleness, b.mean_staleness);
  EXPECT_EQ(a.client_crashes, b.client_crashes);
  EXPECT_EQ(a.redispatches, b.redispatches);
  EXPECT_EQ(a.upload_retries, b.upload_retries);
  EXPECT_EQ(a.speculation_cut, b.speculation_cut);
  EXPECT_EQ(a.speculation_wasted, b.speculation_wasted);
}

/// Runs lazy once, then eager at several sim_jobs caps; every eager run
/// must be bitwise identical to the lazy baseline.
void check_invariance(const Fixture& f, const RunConfig& base) {
  RunConfig lazy = base;
  lazy.eager_training = false;
  const RunResult reference = f.run(lazy);
  for (const std::size_t cap : {std::size_t{0}, std::size_t{1},
                                std::size_t{2}, std::size_t{4}}) {
    RunConfig eager = base;
    eager.eager_training = true;
    eager.sim_jobs = cap;
    const RunResult got = f.run(eager);
    SCOPED_TRACE("sim_jobs=" + std::to_string(cap));
    expect_bitwise_equal(reference, got);
  }
}

TEST(EagerEqualityTest, BufferedSemiAsyncRun) {
  const Fixture f;
  check_invariance(f, f.base_config());
}

TEST(EagerEqualityTest, PartialTrainingCutsSessions) {
  const Fixture f;
  RunConfig c = f.base_config();
  c.staleness_limit = 1;  // aggressive: notifications fire constantly
  c.partial_training = true;
  // The scenario must actually exercise the cut path, or the test is vacuous.
  RunConfig probe = c;
  probe.eager_training = false;
  const RunResult r = f.run(probe);
  ASSERT_GT(r.speculation_cut, 0u);
  ASSERT_GT(r.partial_updates, 0u);
  check_invariance(f, c);
}

TEST(EagerEqualityTest, LostUploadsAbandonSpeculations) {
  const Fixture f;
  RunConfig c = f.base_config();
  c.upload_loss_prob = 0.35;  // no retries: every loss abandons the session
  RunConfig probe = c;
  probe.eager_training = false;
  const RunResult r = f.run(probe);
  ASSERT_GT(r.speculation_wasted, 0u);
  check_invariance(f, c);
}

TEST(EagerEqualityTest, UploadRetriesReuseTheHarvestedResult) {
  const Fixture f;
  RunConfig c = f.base_config();
  c.upload_loss_prob = 0.35;
  c.faults.max_upload_retries = 2;
  RunConfig probe = c;
  probe.eager_training = false;
  const RunResult r = f.run(probe);
  ASSERT_GT(r.upload_retries, 0u);
  check_invariance(f, c);
}

TEST(EagerEqualityTest, SubmodelTrainingFreezesLayers) {
  const Fixture f;
  RunConfig c = f.base_config();
  c.staleness_limit = 2;
  c.partial_training = true;
  c.submodel_training = true;
  c.submodel_slowdown_threshold = 1.2;  // most devices freeze a prefix
  check_invariance(f, c);
}

TEST(EagerEqualityTest, TraceSinkDoesNotPerturbResults) {
  const Fixture f;
  RunConfig lazy = f.base_config();
  const RunResult reference = f.run(lazy);
  RunConfig eager = lazy;
  eager.eager_training = true;
  eager.sim_jobs = 2;
  obs::TraceJournal journal;
  const RunResult got = f.run(eager, &journal);
  expect_bitwise_equal(reference, got);
  // The journal must actually record the speculation lifecycle.
  std::size_t speculates = 0, harvests = 0;
  for (const auto& e : journal.events()) {
    speculates += e.kind == obs::TraceEventKind::kSpeculate ? 1 : 0;
    harvests += e.kind == obs::TraceEventKind::kHarvest ? 1 : 0;
  }
  EXPECT_GT(speculates, 0u);
  EXPECT_GT(harvests, 0u);
}

TEST(EagerEqualityTest, SimJobsRequiresEagerTraining) {
  const Fixture f;
  RunConfig c = f.base_config();
  c.sim_jobs = 2;  // without eager_training: invalid
  Fleet fleet(f.fleet_config);
  EXPECT_THROW(Simulation(f.task, f.factory, fleet, f.strategy(), c), Error);
}

}  // namespace
}  // namespace seafl
