// Unit tests of the speculative training executor (DESIGN.md §12): every
// path to a harvested result — completed on a worker, stolen while queued,
// cut to a shorter epoch budget, abandoned and retrained, skipped at the
// live-job cap — must produce bitwise the same ClientTrainResult as a
// direct ClientTrainer call with the same inputs.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "fl/executor.h"

namespace seafl {
namespace {

struct Fixture {
  FlTask task;
  ModelFactory factory;
  RunConfig config;

  Fixture() {
    TaskSpec spec;
    spec.name = "synth-mnist";
    spec.num_clients = 6;
    spec.samples_per_client = 12;
    spec.test_samples = 20;
    task = make_task(spec);
    factory = make_model(task.default_model, task.input, task.num_classes);
    config.local_epochs = 3;
    config.batch_size = 6;
    config.sgd.learning_rate = 0.05f;
    config.seed = 42;
    config.eager_training = true;
  }

  std::shared_ptr<const ModelVector> base() const {
    ClientTrainer probe(task, factory, config);
    return std::make_shared<const ModelVector>(probe.num_params(), 0.01f);
  }

  /// The ground truth: what the lazy path would compute.
  ClientTrainResult direct(std::size_t client, const ModelVector& base,
                           std::size_t epochs, std::uint64_t round) const {
    ClientTrainer trainer(task, factory, config);
    return trainer.train(client, base, epochs, round);
  }
};

void expect_same(const ClientTrainResult& a, const ClientTrainResult& b) {
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.mean_loss, b.mean_loss);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  EXPECT_EQ(std::memcmp(a.weights.data(), b.weights.data(),
                        a.weights.size() * sizeof(float)),
            0);
}

/// Occupies every pool worker until release(), so speculated jobs stay
/// queued and the harvest/abandon paths for *queued* jobs are deterministic.
class PoolBlocker {
 public:
  PoolBlocker() {
    auto gate = gate_.get_future().share();
    for (std::size_t i = 0; i < global_pool().size(); ++i) {
      blocked_.push_back(global_pool().submit([gate] { gate.wait(); }));
    }
  }
  ~PoolBlocker() { release(); }
  void release() {
    if (released_) return;
    released_ = true;
    gate_.set_value();
    for (auto& b : blocked_) b.get();
  }

 private:
  std::promise<void> gate_;
  std::vector<std::future<void>> blocked_;
  bool released_ = false;
};

TEST(ExecutorTest, HarvestMatchesDirectTrainer) {
  const Fixture f;
  const auto base = f.base();
  TrainingExecutor ex(f.task, f.factory, f.config);
  ex.speculate(2, base, 3, /*round=*/1, 0);
  const ClientTrainResult got = ex.harvest(2, *base, 3, 1, 0);
  expect_same(got, f.direct(2, *base, 3, 1));
}

TEST(ExecutorTest, StealsQueuedJobWithoutBlocking) {
  const Fixture f;
  const auto base = f.base();
  TrainingExecutor ex(f.task, f.factory, f.config);
  PoolBlocker blocker;  // job cannot start: harvest must steal + run inline
  ex.speculate(0, base, 2, 4, 0);
  const ClientTrainResult got = ex.harvest(0, *base, 2, 4, 0);
  blocker.release();
  expect_same(got, f.direct(0, *base, 2, 4));
}

TEST(ExecutorTest, CutLowersEpochBudget) {
  Fixture f;
  f.config.partial_training = true;  // enables epoch checkpoints
  const auto base = f.base();
  TrainingExecutor ex(f.task, f.factory, f.config);
  {
    PoolBlocker blocker;  // cut lands while the job is still queued
    ex.speculate(1, base, 3, 2, 0);
    ex.cut(1, 1);
  }
  const ClientTrainResult got = ex.harvest(1, *base, 1, 2, 0);
  EXPECT_EQ(got.epochs, 1u);
  expect_same(got, f.direct(1, *base, 1, 2));
}

TEST(ExecutorTest, CheckpointServesPrefixOfFinishedSession) {
  Fixture f;
  f.config.partial_training = true;
  const auto base = f.base();
  TrainingExecutor ex(f.task, f.factory, f.config);
  // The job may run all 3 epochs before the (never-sent) cut would land;
  // harvesting 1 epoch must then come from the epoch-1 checkpoint — the
  // per-epoch RNG keying makes it the exact prefix of the full session.
  ex.speculate(3, base, 3, 5, 0);
  const ClientTrainResult got = ex.harvest(3, *base, 1, 5, 0);
  EXPECT_EQ(got.epochs, 1u);
  expect_same(got, f.direct(3, *base, 1, 5));
}

TEST(ExecutorTest, AbandonedJobRetrainsOnHarvest) {
  const Fixture f;
  const auto base = f.base();
  TrainingExecutor ex(f.task, f.factory, f.config);
  ex.speculate(4, base, 2, 3, 0);
  ex.abandon(4);
  ex.abandon(4);  // idempotent: no job is fine
  // A re-dispatched session harvests from scratch (fresh inputs).
  const ClientTrainResult got = ex.harvest(4, *base, 2, 7, 0);
  expect_same(got, f.direct(4, *base, 2, 7));
}

TEST(ExecutorTest, AbandonAfterCancelWhileQueued) {
  const Fixture f;
  const auto base = f.base();
  TrainingExecutor ex(f.task, f.factory, f.config);
  {
    PoolBlocker blocker;
    ex.speculate(5, base, 2, 1, 0);
    ex.abandon(5);  // still queued: the closure must self-cancel later
  }
  ex.drain();  // must not wait on the cancelled job
  const ClientTrainResult got = ex.harvest(5, *base, 2, 2, 0);
  expect_same(got, f.direct(5, *base, 2, 2));
}

TEST(ExecutorTest, CapSkipTrainsInlineAtHarvest) {
  Fixture f;
  f.config.sim_jobs = 1;
  const auto base = f.base();
  TrainingExecutor ex(f.task, f.factory, f.config);
  ex.speculate(0, base, 2, 1, 0);
  ex.speculate(1, base, 2, 1, 0);  // over the cap: skipped
  const ClientTrainResult a = ex.harvest(0, *base, 2, 1, 0);
  const ClientTrainResult b = ex.harvest(1, *base, 2, 1, 0);
  expect_same(a, f.direct(0, *base, 2, 1));
  expect_same(b, f.direct(1, *base, 2, 1));
}

TEST(ExecutorTest, DestructorDrainsInFlightJobs) {
  const Fixture f;
  const auto base = f.base();
  {
    TrainingExecutor ex(f.task, f.factory, f.config);
    for (std::size_t c = 0; c < 4; ++c) ex.speculate(c, base, 2, 1, 0);
    // No harvest: destruction must abandon + join without hanging.
  }
  {
    TrainingExecutor ex(f.task, f.factory, f.config);
    PoolBlocker blocker;
    for (std::size_t c = 0; c < 4; ++c) ex.speculate(c, base, 2, 1, 0);
    ex.drain();  // queued-only jobs: nothing to wait on
  }
}

}  // namespace
}  // namespace seafl
