#include <gtest/gtest.h>

#include <cmath>

#include "fl/strategies.h"

namespace seafl {
namespace {

LocalUpdate make_update(std::size_t client, std::uint64_t base_round,
                        ModelVector weights, std::size_t samples) {
  LocalUpdate u;
  u.client = client;
  u.base_round = base_round;
  u.weights = std::move(weights);
  u.num_samples = samples;
  u.epochs_completed = 5;
  return u;
}

AggregationContext make_ctx(std::uint64_t round, const ModelVector& global,
                            std::span<const LocalUpdate> buffer) {
  AggregationContext ctx;
  ctx.round = round;
  ctx.global = &global;
  ctx.total_samples = 0;
  for (const auto& u : buffer) ctx.total_samples += u.num_samples;
  return ctx;
}

// --------------------------------------------------------- normalize/mix

TEST(NormalizeWeightsTest, SumsToOne) {
  std::vector<double> w{1.0, 2.0, 3.0};
  normalize_weights(w);
  EXPECT_NEAR(w[0] + w[1] + w[2], 1.0, 1e-12);
  EXPECT_NEAR(w[2], 0.5, 1e-12);
}

TEST(NormalizeWeightsTest, AllZeroFallsBackToUniform) {
  std::vector<double> w{0.0, 0.0};
  normalize_weights(w);
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

TEST(NormalizeWeightsTest, NegativeWeightThrows) {
  std::vector<double> w{1.0, -0.5};
  EXPECT_THROW(normalize_weights(w), Error);
}

TEST(MixIntoGlobalTest, ConvexCombination) {
  ModelVector global{1.0f, 2.0f};
  const ModelVector fresh{5.0f, 6.0f};
  mix_into_global(fresh, 0.25, global);
  EXPECT_FLOAT_EQ(global[0], 0.75f * 1.0f + 0.25f * 5.0f);
  EXPECT_FLOAT_EQ(global[1], 0.75f * 2.0f + 0.25f * 6.0f);
}

TEST(MixIntoGlobalTest, ThetaOneReplaces) {
  ModelVector global{1.0f};
  mix_into_global(ModelVector{9.0f}, 1.0, global);
  EXPECT_FLOAT_EQ(global[0], 9.0f);
}

TEST(MixIntoGlobalTest, RejectsBadArguments) {
  ModelVector global{1.0f};
  EXPECT_THROW(mix_into_global(ModelVector{1.0f}, 0.0, global), Error);
  EXPECT_THROW(mix_into_global(ModelVector{1.0f}, 1.5, global), Error);
  EXPECT_THROW(mix_into_global(ModelVector{1.0f, 2.0f}, 0.5, global), Error);
}

// ------------------------------------------------------------------ FedAvg

TEST(FedAvgTest, SampleCountWeightedMean) {
  FedAvgStrategy strategy;
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {1.0f, 0.0f}, 30));
  buffer.push_back(make_update(1, 0, {4.0f, 9.0f}, 10));
  ModelVector global{0.0f, 0.0f};
  const auto ctx = make_ctx(0, global, buffer);
  strategy.aggregate(ctx, buffer, global);
  // weights 0.75 / 0.25.
  EXPECT_FLOAT_EQ(global[0], 0.75f * 1.0f + 0.25f * 4.0f);
  EXPECT_FLOAT_EQ(global[1], 0.25f * 9.0f);
}

TEST(FedAvgTest, SingleUpdateIsIdentity) {
  FedAvgStrategy strategy;
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {3.5f}, 7));
  ModelVector global{0.0f};
  strategy.aggregate(make_ctx(0, global, buffer), buffer, global);
  EXPECT_FLOAT_EQ(global[0], 3.5f);
}

TEST(FedAvgTest, IgnoresPreviousGlobal) {
  // Synchronous FedAvg replaces the model entirely.
  FedAvgStrategy strategy;
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {2.0f}, 1));
  ModelVector global{100.0f};
  strategy.aggregate(make_ctx(0, global, buffer), buffer, global);
  EXPECT_FLOAT_EQ(global[0], 2.0f);
}

// ----------------------------------------------------------------- FedBuff

TEST(FedBuffTest, UniformMeanMixedWithGlobal) {
  FedBuffStrategy strategy(FedBuffConfig{.vartheta = 0.5});
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {2.0f}, 100));  // sample counts ignored
  buffer.push_back(make_update(1, 0, {6.0f}, 1));
  ModelVector global{0.0f};
  strategy.aggregate(make_ctx(1, global, buffer), buffer, global);
  // mean = 4, mixed: 0.5 * 0 + 0.5 * 4 = 2.
  EXPECT_FLOAT_EQ(global[0], 2.0f);
}

TEST(FedBuffTest, DefaultvarthetaMatchesPaper) {
  FedBuffStrategy strategy;  // default 0.8
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {10.0f}, 1));
  ModelVector global{0.0f};
  strategy.aggregate(make_ctx(1, global, buffer), buffer, global);
  EXPECT_NEAR(global[0], 8.0f, 1e-5);
}

TEST(FedBuffTest, RejectsInvalidConfig) {
  EXPECT_THROW(FedBuffStrategy(FedBuffConfig{.vartheta = 0.0}), Error);
  EXPECT_THROW(FedBuffStrategy(FedBuffConfig{.vartheta = 1.1}), Error);
}

// ---------------------------------------------------------------- FedAsync

TEST(FedAsyncTest, FreshUpdateUsesBaseAlpha) {
  FedAsyncStrategy strategy(FedAsyncConfig{.alpha = 0.6, .poly_a = 0.5});
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, /*base_round=*/5, {10.0f}, 1));
  ModelVector global{0.0f};
  strategy.aggregate(make_ctx(/*round=*/5, global, buffer), buffer, global);
  EXPECT_NEAR(global[0], 6.0f, 1e-5);  // staleness 0 -> alpha_t = 0.6
}

TEST(FedAsyncTest, StaleUpdateIsDownweighted) {
  FedAsyncStrategy strategy(FedAsyncConfig{.alpha = 0.6, .poly_a = 0.5});
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, /*base_round=*/1, {10.0f}, 1));
  ModelVector global{0.0f};
  strategy.aggregate(make_ctx(/*round=*/9, global, buffer), buffer, global);
  // staleness 8 -> alpha_t = 0.6 / 3 = 0.2.
  EXPECT_NEAR(global[0], 2.0f, 1e-5);
}

TEST(FedAsyncTest, PolyZeroIgnoresStaleness) {
  FedAsyncStrategy strategy(FedAsyncConfig{.alpha = 0.5, .poly_a = 0.0});
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {4.0f}, 1));
  ModelVector global{0.0f};
  strategy.aggregate(make_ctx(100, global, buffer), buffer, global);
  EXPECT_NEAR(global[0], 2.0f, 1e-5);
}

TEST(FedAsyncTest, MinAlphaFloors) {
  FedAsyncStrategy strategy(
      FedAsyncConfig{.alpha = 0.6, .poly_a = 2.0, .min_alpha = 0.3});
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {10.0f}, 1));
  ModelVector global{0.0f};
  strategy.aggregate(make_ctx(99, global, buffer), buffer, global);
  EXPECT_NEAR(global[0], 3.0f, 1e-5);
}

TEST(FedAsyncTest, MultipleUpdatesApplySequentially) {
  FedAsyncStrategy strategy(FedAsyncConfig{.alpha = 0.5, .poly_a = 0.0});
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {8.0f}, 1));
  buffer.push_back(make_update(1, 0, {0.0f}, 1));
  ModelVector global{0.0f};
  strategy.aggregate(make_ctx(0, global, buffer), buffer, global);
  // After first: 4. After second: 2.
  EXPECT_NEAR(global[0], 2.0f, 1e-5);
}

TEST(FedAsyncTest, UpdateFromFutureThrows) {
  FedAsyncStrategy strategy;
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, /*base_round=*/7, {1.0f}, 1));
  ModelVector global{0.0f};
  EXPECT_THROW(
      strategy.aggregate(make_ctx(/*round=*/3, global, buffer), buffer,
                         global),
      Error);
}

TEST(FedAsyncTest, RejectsInvalidConfig) {
  EXPECT_THROW(FedAsyncStrategy(FedAsyncConfig{.alpha = 0.0}), Error);
  EXPECT_THROW(FedAsyncStrategy(FedAsyncConfig{.alpha = 0.5, .poly_a = -1.0}),
               Error);
}

TEST(StrategyNamesTest, DisplayNames) {
  EXPECT_EQ(FedAvgStrategy().name(), "FedAvg");
  EXPECT_EQ(FedBuffStrategy().name(), "FedBuff");
  EXPECT_EQ(FedAsyncStrategy().name(), "FedAsync");
}

}  // namespace
}  // namespace seafl
