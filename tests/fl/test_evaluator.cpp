#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "fl/client.h"
#include "fl/evaluator.h"

namespace seafl {
namespace {

struct Fixture {
  FlTask task;
  ModelFactory factory;

  explicit Fixture(std::size_t test_samples = 100) {
    TaskSpec spec;
    spec.name = "synth-mnist";
    spec.num_clients = 5;
    spec.samples_per_client = 40;
    spec.test_samples = test_samples;
    task = make_task(spec);
    factory = make_model(task.default_model, task.input, task.num_classes);
  }

  ModelVector initial_weights(std::uint64_t seed = 42) {
    auto model = factory();
    Rng rng(seed, RngPurpose::kInit);
    model->init(rng);
    return model->parameter_vector();
  }
};

TEST(EvaluatorTest, FullTestSetByDefault) {
  Fixture f;
  Evaluator eval(f.task, f.factory, 32, /*subset=*/0, 1);
  EXPECT_EQ(eval.eval_samples(), 100u);
}

TEST(EvaluatorTest, SubsetLimitsSamples) {
  Fixture f;
  Evaluator eval(f.task, f.factory, 32, /*subset=*/30, 1);
  EXPECT_EQ(eval.eval_samples(), 30u);
  Evaluator all(f.task, f.factory, 32, /*subset=*/500, 1);  // > test size
  EXPECT_EQ(all.eval_samples(), 100u);
}

TEST(EvaluatorTest, UntrainedModelNearChance) {
  Fixture f;
  Evaluator eval(f.task, f.factory, 32, 0, 1);
  const auto r = eval.evaluate(f.initial_weights());
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 0.4);  // 10 classes: chance is 0.1
  EXPECT_GT(r.loss, 1.0);
}

TEST(EvaluatorTest, TrainedModelBeatsUntrained) {
  Fixture f;
  RunConfig config;
  config.local_epochs = 1;
  config.batch_size = 10;
  config.sgd.learning_rate = 0.05f;
  config.seed = 42;
  ClientTrainer trainer(f.task, f.factory, config);

  // Centralized-ish training: run several "clients" sequentially.
  ModelVector w = f.initial_weights();
  for (std::uint64_t round = 0; round < 6; ++round)
    for (std::size_t k = 0; k < f.task.num_clients(); ++k)
      w = trainer.train(k, w, 1, round).weights;

  Evaluator eval(f.task, f.factory, 32, 0, 1);
  const auto before = eval.evaluate(f.initial_weights());
  const auto after = eval.evaluate(w);
  EXPECT_GT(after.accuracy, before.accuracy + 0.2);
  EXPECT_LT(after.loss, before.loss);
}

TEST(EvaluatorTest, DeterministicForSameWeights) {
  Fixture f;
  Evaluator eval(f.task, f.factory, 16, 50, 7);
  const ModelVector w = f.initial_weights();
  const auto a = eval.evaluate(w);
  const auto b = eval.evaluate(w);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
}

TEST(EvaluatorTest, BatchSizeDoesNotChangeResult) {
  Fixture f;
  const ModelVector w = f.initial_weights();
  Evaluator small(f.task, f.factory, 7, 0, 1);
  Evaluator large(f.task, f.factory, 64, 0, 1);
  EXPECT_DOUBLE_EQ(small.evaluate(w).accuracy, large.evaluate(w).accuracy);
  EXPECT_NEAR(small.evaluate(w).loss, large.evaluate(w).loss, 1e-9);
}

TEST(EvaluatorTest, SubsetIsSeedStable) {
  Fixture f;
  const ModelVector w = f.initial_weights();
  Evaluator a(f.task, f.factory, 32, 40, 5);
  Evaluator b(f.task, f.factory, 32, 40, 5);
  EXPECT_DOUBLE_EQ(a.evaluate(w).accuracy, b.evaluate(w).accuracy);
}

TEST(EvaluatorTest, ParallelMatchesSerialBitwise) {
  // The fixed-block reduction contract: pool-parallel batch scoring must be
  // bitwise identical to the degraded serial loop, not merely close.
  Fixture f;
  const ModelVector w = f.initial_weights();
  Evaluator eval(f.task, f.factory, 16, 0, 1);
  const EvalResult parallel = eval.evaluate(w);
  EvalResult serial;
  {
    SerialKernelScope scope;
    serial = eval.evaluate(w);
  }
  EXPECT_EQ(parallel.accuracy, serial.accuracy);
  EXPECT_EQ(parallel.loss, serial.loss);
}

TEST(EvaluatorTest, SlotsReloadWeightsAcrossPasses) {
  // Leased contexts cache the loaded weights per pass (version stamp); a
  // second pass with different weights must not reuse stale parameters.
  Fixture f;
  Evaluator eval(f.task, f.factory, 16, 0, 1);
  const ModelVector a = f.initial_weights(1);
  const ModelVector b = f.initial_weights(2);
  const EvalResult ra1 = eval.evaluate(a);
  const EvalResult rb = eval.evaluate(b);
  const EvalResult ra2 = eval.evaluate(a);
  EXPECT_EQ(ra1.accuracy, ra2.accuracy);
  EXPECT_EQ(ra1.loss, ra2.loss);
  EXPECT_NE(ra1.loss, rb.loss);
}

TEST(EvaluatorTest, RejectsWrongDimension) {
  Fixture f;
  Evaluator eval(f.task, f.factory, 32, 0, 1);
  EXPECT_THROW(eval.evaluate(ModelVector(5)), Error);
}

}  // namespace
}  // namespace seafl
