// ServerCore unit contract (DESIGN.md §13): the transport-independent
// aggregation brain shared by the virtual Simulation and the socket
// DeployServer — buffer targets, stale-hold, degraded rounds, sync mode,
// reporters, and the config/initial-weights helpers both drivers call.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "common/error.h"
#include "core/screening.h"
#include "core/seafl_strategy.h"
#include "fl/server_core.h"
#include "tensor/workspace.h"
#include "nn/model_zoo.h"
#include "obs/trace.h"

namespace seafl {
namespace {

/// Replaces the global model with the buffer's plain mean — enough to
/// observe that aggregation ran and what it consumed.
class MeanStub final : public AggregationStrategy {
 public:
  void aggregate(const AggregationContext& /*ctx*/,
                 std::span<const LocalUpdate> buffer,
                 ModelVector& global_out) override {
    ++calls;
    last_buffer_size = buffer.size();
    for (std::size_t j = 0; j < global_out.size(); ++j) {
      float sum = 0.0f;
      for (const LocalUpdate& u : buffer) sum += u.weights[j];
      global_out[j] = sum / static_cast<float>(buffer.size());
    }
  }
  std::string name() const override { return "mean-stub"; }

  int calls = 0;
  std::size_t last_buffer_size = 0;
};

LocalUpdate update_from(std::size_t client, std::uint64_t base_round,
                        float value, std::size_t model_size) {
  LocalUpdate u;
  u.client = client;
  u.base_round = base_round;
  u.weights.assign(model_size, value);
  u.num_samples = 10;
  u.epochs_completed = 1;
  return u;
}

RunConfig semi_async_config() {
  RunConfig c;
  c.mode = FlMode::kSemiAsync;
  c.buffer_size = 2;
  c.concurrency = 4;
  c.local_epochs = 1;
  c.stop_at_target = false;
  return c;
}

TEST(ServerCore, BuffersUntilTargetThenAggregates) {
  const RunConfig config = semi_async_config();
  MeanStub strategy;
  ServerCore core(&strategy, config);
  core.begin(ModelVector{0.0f, 0.0f}, /*num_clients=*/4);

  core.add_update(update_from(0, 0, 2.0f, 2));
  AggregateOutcome out = core.try_aggregate(1.0, {}, nullptr);
  EXPECT_FALSE(out.aggregated);
  EXPECT_FALSE(out.stale_hold);
  EXPECT_EQ(strategy.calls, 0);
  EXPECT_EQ(core.round(), 0u);

  core.add_update(update_from(1, 0, 4.0f, 2));
  out = core.try_aggregate(2.0, {}, nullptr);
  EXPECT_TRUE(out.aggregated);
  EXPECT_EQ(strategy.calls, 1);
  EXPECT_EQ(strategy.last_buffer_size, 2u);
  EXPECT_EQ(core.round(), 1u);
  EXPECT_TRUE(core.buffer().empty());
  EXPECT_FLOAT_EQ(core.global()[0], 3.0f);  // mean of 2 and 4
  ASSERT_EQ(out.reporters.size(), 2u);      // arrival order
  EXPECT_EQ(out.reporters[0], 0u);
  EXPECT_EQ(out.reporters[1], 1u);

  const RunResult& res = core.result();
  EXPECT_EQ(res.aggregations, 1u);
  EXPECT_EQ(res.total_updates, 2u);
  EXPECT_EQ(res.participation[0], 1u);
  EXPECT_EQ(res.participation[1], 1u);
  ASSERT_EQ(res.round_log.size(), 1u);
  EXPECT_EQ(res.round_log[0].updates, 2u);
}

TEST(ServerCore, StaleHoldWhenInFlightSessionAtLimit) {
  RunConfig config = semi_async_config();
  config.wait_for_stale = true;
  config.staleness_limit = 2;
  MeanStub strategy;
  ServerCore core(&strategy, config);
  core.begin(ModelVector{0.0f}, 4);

  // Advance to round 2 so an in-flight base_round 0 has staleness 2.
  for (std::uint64_t r = 0; r < 2; ++r) {
    core.add_update(update_from(0, r, 1.0f, 1));
    core.add_update(update_from(1, r, 1.0f, 1));
    ASSERT_TRUE(core.try_aggregate(1.0, {}, nullptr).aggregated);
  }
  ASSERT_EQ(core.round(), 2u);

  core.add_update(update_from(2, 2, 1.0f, 1));
  core.add_update(update_from(3, 2, 1.0f, 1));
  // A session dispatched at round 0 is exactly at the limit: hold.
  AggregateOutcome out = core.try_aggregate(3.0, {0}, nullptr);
  EXPECT_FALSE(out.aggregated);
  EXPECT_TRUE(out.stale_hold);
  EXPECT_EQ(core.result().stale_waits, 1u);
  EXPECT_EQ(core.buffer().size(), 2u);  // buffer intact while holding

  // Fresh in-flight sessions release the hold.
  out = core.try_aggregate(4.0, {2, 2}, nullptr);
  EXPECT_TRUE(out.aggregated);
  EXPECT_FALSE(out.stale_hold);
}

TEST(ServerCore, DropStaleDiscardsOverLimitUpdates) {
  RunConfig config = semi_async_config();
  config.drop_stale = true;
  config.staleness_limit = 1;
  MeanStub strategy;
  ServerCore core(&strategy, config);
  core.begin(ModelVector{0.0f}, 4);

  for (std::uint64_t r = 0; r < 2; ++r) {
    core.add_update(update_from(0, r, 1.0f, 1));
    core.add_update(update_from(1, r, 1.0f, 1));
    ASSERT_TRUE(core.try_aggregate(1.0, {}, nullptr).aggregated);
  }
  ASSERT_EQ(core.round(), 2u);

  core.add_update(update_from(2, 0, 1.0f, 1));  // staleness 2 > limit 1
  core.add_update(update_from(3, 2, 1.0f, 1));  // fresh
  const AggregateOutcome out = core.try_aggregate(3.0, {}, nullptr);
  EXPECT_FALSE(out.aggregated);  // dropping left one update, below K=2
  EXPECT_EQ(core.result().dropped_updates, 1u);
  ASSERT_EQ(core.buffer().size(), 1u);
  EXPECT_EQ(core.buffer()[0].client, 3u);
}

TEST(ServerCore, RoundDeadlineDegradesBufferTarget) {
  RunConfig config = semi_async_config();
  config.faults.round_deadline = 5.0;
  config.faults.min_updates = 1;
  MeanStub strategy;
  ServerCore core(&strategy, config);
  obs::TraceJournal journal;
  core.begin(ModelVector{0.0f}, 4);

  core.add_update(update_from(0, 0, 2.0f, 1));
  EXPECT_FALSE(core.try_aggregate(1.0, {}, &journal).aggregated);

  core.note_round_deadline();
  const AggregateOutcome out = core.try_aggregate(6.0, {}, &journal);
  EXPECT_TRUE(out.aggregated);
  EXPECT_EQ(strategy.last_buffer_size, 1u);
  EXPECT_EQ(core.result().degraded_aggregations, 1u);
  const auto degraded =
      std::count_if(journal.events().begin(), journal.events().end(),
                    [](const obs::TraceEvent& e) {
                      return e.kind == obs::TraceEventKind::kDegradedAggregate;
                    });
  EXPECT_EQ(degraded, 1);

  // The deadline flag resets with the aggregation: the next round is back
  // to the full target.
  core.add_update(update_from(1, 1, 1.0f, 1));
  EXPECT_FALSE(core.try_aggregate(7.0, {}, &journal).aggregated);
}

TEST(ServerCore, SyncModeWaitsForFullCohort) {
  RunConfig config;
  config.mode = FlMode::kSync;
  config.concurrency = 3;
  config.buffer_size = 1;  // ignored in sync mode
  config.local_epochs = 1;
  MeanStub strategy;
  ServerCore core(&strategy, config);
  core.begin(ModelVector{0.0f}, 4);

  core.add_update(update_from(0, 0, 1.0f, 1));
  core.add_update(update_from(1, 0, 1.0f, 1));
  EXPECT_FALSE(core.try_aggregate(1.0, {}, nullptr).aggregated);
  core.add_update(update_from(2, 0, 1.0f, 1));
  const AggregateOutcome out = core.try_aggregate(2.0, {}, nullptr);
  EXPECT_TRUE(out.aggregated);
  EXPECT_EQ(strategy.last_buffer_size, 3u);
  EXPECT_EQ(out.reporters.size(), 3u);
}

TEST(ServerCore, BeginResetsAllRunState) {
  const RunConfig config = semi_async_config();
  MeanStub strategy;
  ServerCore core(&strategy, config);
  core.begin(ModelVector{0.0f}, 4);
  core.add_update(update_from(0, 0, 2.0f, 1));
  core.add_update(update_from(1, 0, 4.0f, 1));
  ASSERT_TRUE(core.try_aggregate(1.0, {}, nullptr).aggregated);
  ASSERT_EQ(core.round(), 1u);

  core.begin(ModelVector{9.0f}, 2);
  EXPECT_EQ(core.round(), 0u);
  EXPECT_TRUE(core.buffer().empty());
  EXPECT_FLOAT_EQ(core.global()[0], 9.0f);
  EXPECT_DOUBLE_EQ(core.staleness_sum(), 0.0);
  EXPECT_EQ(core.result().aggregations, 0u);
  EXPECT_EQ(core.result().participation.size(), 2u);
}

TEST(ServerCore, ValidateRunConfigRejectsBadParameters) {
  const std::size_t n = 10;
  {
    RunConfig c = semi_async_config();
    c.concurrency = 0;
    EXPECT_THROW(validate_run_config(c, n), Error);
  }
  {
    RunConfig c = semi_async_config();
    c.concurrency = n + 1;
    EXPECT_THROW(validate_run_config(c, n), Error);
  }
  {
    RunConfig c = semi_async_config();
    c.buffer_size = 0;
    EXPECT_THROW(validate_run_config(c, n), Error);
  }
  {
    RunConfig c = semi_async_config();
    c.buffer_size = c.concurrency + 1;  // K > M in semi-async
    EXPECT_THROW(validate_run_config(c, n), Error);
  }
  {
    RunConfig c = semi_async_config();
    c.wait_for_stale = true;
    c.drop_stale = true;
    EXPECT_THROW(validate_run_config(c, n), Error);
  }
  {
    RunConfig c = semi_async_config();
    c.faults.deadline_factor = 0.5;  // must be 0 or >= 1
    EXPECT_THROW(validate_run_config(c, n), Error);
  }
  {
    RunConfig c = semi_async_config();
    c.faults.round_deadline = 1.0;
    c.faults.min_updates = c.buffer_size + 1;
    EXPECT_THROW(validate_run_config(c, n), Error);
  }
  EXPECT_NO_THROW(validate_run_config(semi_async_config(), n));
}

TEST(ServerCore, ReportersSpanStaysCorrectAcrossRounds) {
  // AggregateOutcome::reporters is a span into a scratch vector the core
  // reuses round to round; each aggregation must expose exactly that round's
  // contributors in arrival order, with no carry-over from earlier rounds.
  const RunConfig config = semi_async_config();  // K = 2
  MeanStub strategy;
  ServerCore core(&strategy, config);
  core.begin(ModelVector{0.0f, 0.0f}, /*num_clients=*/8);

  for (std::uint64_t r = 0; r < 4; ++r) {
    const std::size_t a = (2 * r) % 8;
    const std::size_t b = (2 * r + 1) % 8;
    core.add_update(update_from(a, r, 1.0f + r, 2));
    core.add_update(update_from(b, r, 2.0f + r, 2));
    const AggregateOutcome out =
        core.try_aggregate(static_cast<double>(r + 1), {}, nullptr);
    ASSERT_TRUE(out.aggregated);
    ASSERT_EQ(out.reporters.size(), 2u);
    EXPECT_EQ(out.reporters[0], a);
    EXPECT_EQ(out.reporters[1], b);
    EXPECT_TRUE(core.buffer().empty());
  }
  EXPECT_EQ(core.result().aggregations, 4u);
  EXPECT_EQ(core.result().total_updates, 8u);
}

TEST(ServerCore, SteadyStateRoundsReuseWorkspaceSlots) {
  // Regression pin for the zero-allocation data plane (DESIGN.md §17): with
  // constant K and dim, the screening + adaptive-aggregation round stages
  // everything in already-sized workspace slots — the slot-allocation
  // counter must stay flat after the sizing rounds.
  if (!Workspace::enabled()) GTEST_SKIP() << "workspace arena disabled";
  const RunConfig config = semi_async_config();  // K = 2
  ScreeningConfig screening;
  screening.clip_multiple = 3.0;
  screening.min_cosine = -0.9;
  screening.min_buffer = 2;
  ScreenedStrategy strategy(std::make_unique<SeaflStrategy>(SeaflConfig{}),
                            screening);
  ServerCore core(&strategy, config);
  core.begin(ModelVector(64, 0.1f), /*num_clients=*/8);
  core.result().round_log.reserve(16);

  const auto round = [&](std::uint64_t r) {
    core.add_update(update_from((2 * r) % 8, r, 0.5f + 0.1f * r, 64));
    core.add_update(update_from((2 * r + 1) % 8, r, 1.5f - 0.1f * r, 64));
    ASSERT_TRUE(
        core.try_aggregate(static_cast<double>(r + 1), {}, nullptr).aggregated);
  };
  for (std::uint64_t r = 0; r < 3; ++r) round(r);  // sizing rounds
  const std::uint64_t sized = Workspace::total_slot_allocs();
  for (std::uint64_t r = 3; r < 7; ++r) round(r);
  EXPECT_EQ(Workspace::total_slot_allocs(), sized);
}

TEST(ServerCore, InitialGlobalWeightsAreSeedDeterministic) {
  InputSpec input;
  input.width = 16;
  const ModelFactory factory = make_model(ModelKind::kMlp, input, 4);
  const ModelVector a = initial_global_weights(factory, 42);
  const ModelVector b = initial_global_weights(factory, 42);
  const ModelVector c = initial_global_weights(factory, 43);
  EXPECT_EQ(a, b);       // same seed: bitwise identical
  EXPECT_NE(a, c);       // different seed: different init
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace seafl
