// Population-scale representation equivalences (DESIGN.md §16): the lazy
// pooled partition, the sparse participation accounting, and the checkpoint
// encoding of sparse results are pure representation choices — at any
// population where both forms are affordable they must agree bit for bit,
// down to final_weights.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "ckpt/checkpoint.h"
#include "data/partition.h"
#include "fl/metrics.h"
#include "fl/simulation.h"
#include "fl/strategies.h"

namespace seafl {
namespace {

struct Fixture {
  FlTask task;
  ModelFactory factory;
  FleetConfig fleet_config;

  explicit Fixture(std::size_t pool_samples = 0) {
    TaskSpec spec;
    spec.name = "synth-mnist";
    spec.num_clients = 24;
    spec.samples_per_client = 15;
    spec.pool_samples = pool_samples;
    spec.test_samples = 60;
    task = make_task(spec);
    factory = make_model(task.default_model, task.input, task.num_classes);
    fleet_config.num_devices = 24;
    fleet_config.pareto_shape = 1.5;
    fleet_config.seed = 7;
  }

  RunConfig base_config() const {
    RunConfig c;
    c.buffer_size = 3;
    c.concurrency = 6;
    c.local_epochs = 2;
    c.batch_size = 8;
    c.sgd.learning_rate = 0.05f;
    c.max_rounds = 6;
    c.stop_at_target = false;
    c.seed = 42;
    return c;
  }

  RunResult run(const RunConfig& c) const {
    Fleet fleet(fleet_config);
    Simulation sim(task, factory, fleet,
                   std::make_unique<FedBuffStrategy>(), c);
    return sim.run();
  }
};

void expect_same_weights(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size());
  EXPECT_EQ(std::memcmp(a.final_weights.data(), b.final_weights.data(),
                        a.final_weights.size() * sizeof(float)),
            0);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.mean_staleness, b.mean_staleness);
}

TEST(ScaleEquivalenceTest, PooledLazyMatchesItsMaterialization) {
  // Route one run through the lazy pooled view and one through the same
  // indices frozen into classic lists: the seam must be invisible.
  Fixture lazy(/*pool_samples=*/600);
  Fixture frozen(/*pool_samples=*/600);
  frozen.task.partition = std::make_shared<MaterializedPartition>(
      materialize(*lazy.task.partition));
  const RunConfig c = lazy.base_config();
  const RunResult a = lazy.run(c);
  const RunResult b = frozen.run(c);
  expect_same_weights(a, b);
  EXPECT_EQ(a.participation, b.participation);
}

TEST(ScaleEquivalenceTest, PooledTaskEagerLazyExecutorsAgree) {
  const Fixture f(/*pool_samples=*/600);
  RunConfig lazy = f.base_config();
  const RunResult reference = f.run(lazy);
  for (const std::size_t cap : {std::size_t{0}, std::size_t{2}}) {
    RunConfig eager = lazy;
    eager.eager_training = true;
    eager.sim_jobs = cap;
    SCOPED_TRACE("sim_jobs=" + std::to_string(cap));
    expect_same_weights(reference, f.run(eager));
  }
}

TEST(ScaleEquivalenceTest, SparseParticipationMatchesDense) {
  const Fixture f;
  // kFastestFirst keeps cohort selection identical across the threshold
  // (the sparse fast path only changes kRandom's draw order).
  RunConfig dense_cfg = f.base_config();
  dense_cfg.selection = SelectionPolicy::kFastestFirst;
  RunConfig sparse_cfg = dense_cfg;
  sparse_cfg.sparse_population_threshold = 0;  // force the sparse form

  const RunResult dense = f.run(dense_cfg);
  const RunResult sparse = f.run(sparse_cfg);
  expect_same_weights(dense, sparse);

  // Exactly one representation each, describing identical counts.
  ASSERT_EQ(dense.participation.size(), dense.population);
  EXPECT_TRUE(dense.sparse_participation.empty());
  EXPECT_TRUE(sparse.participation.empty());
  EXPECT_EQ(sparse.population, dense.population);
  std::size_t dense_active = 0;
  for (std::size_t c = 0; c < dense.participation.size(); ++c) {
    const auto it = sparse.sparse_participation.find(c);
    if (dense.participation[c] == 0) {
      EXPECT_EQ(it, sparse.sparse_participation.end());
    } else {
      ASSERT_NE(it, sparse.sparse_participation.end());
      EXPECT_EQ(it->second, dense.participation[c]);
      ++dense_active;
    }
  }
  EXPECT_EQ(sparse.sparse_participation.size(), dense_active);

  // Fairness is representation-independent, in both accounting modes.
  EXPECT_DOUBLE_EQ(participation_fairness(sparse, /*active_only=*/true),
                   participation_fairness(dense, /*active_only=*/true));
  EXPECT_DOUBLE_EQ(participation_fairness(sparse, /*active_only=*/false),
                   participation_fairness(dense, /*active_only=*/false));
}

TEST(ScaleEquivalenceTest, SparseResultCheckpointRoundTrips) {
  ckpt::RunCheckpoint c;
  c.seed = 42;
  c.model_dim = 4;
  c.num_clients = 1'000'000;
  c.global = {1.0f, 2.0f, 3.0f, 4.0f};
  c.result.population = 1'000'000;
  c.result.sparse_participation = {{3, 2}, {512, 1}, {999'999, 5}};
  c.result.rounds = 7;
  c.result.total_updates = 8;

  const std::string bytes = ckpt::encode_checkpoint(c);
  ckpt::RunCheckpoint out;
  ASSERT_EQ(ckpt::decode_checkpoint(bytes.data(), bytes.size(), out),
            ckpt::DecodeStatus::kOk);
  EXPECT_EQ(out.result.population, c.result.population);
  EXPECT_EQ(out.result.sparse_participation, c.result.sparse_participation);
  EXPECT_TRUE(out.result.participation.empty());
  EXPECT_EQ(out.result.rounds, 7u);

  // Deterministic encoding: same state, same bytes.
  EXPECT_EQ(ckpt::encode_checkpoint(c), bytes);
}

TEST(ScaleEquivalenceTest, DenseResultCheckpointKeepsItsLayout) {
  ckpt::RunCheckpoint c;
  c.seed = 42;
  c.model_dim = 2;
  c.num_clients = 3;
  c.global = {1.0f, 2.0f};
  c.result.population = 3;
  c.result.participation = {2, 0, 1};

  const std::string bytes = ckpt::encode_checkpoint(c);
  // A dense result must not grow the new sparse section.
  ckpt::RunCheckpoint out;
  ASSERT_EQ(ckpt::decode_checkpoint(bytes.data(), bytes.size(), out),
            ckpt::DecodeStatus::kOk);
  EXPECT_EQ(out.result.participation, c.result.participation);
  EXPECT_TRUE(out.result.sparse_participation.empty());
  EXPECT_EQ(out.result.population, 3u);
}

}  // namespace
}  // namespace seafl
