#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fl/metrics.h"

namespace seafl {
namespace {

RunResult make_result() {
  RunResult r;
  for (int i = 0; i <= 4; ++i) {
    AccuracyPoint p;
    p.round = static_cast<std::uint64_t>(i);
    p.time = i * 10.0;
    p.accuracy = 0.2 * i;  // 0.0, 0.2, ..., 0.8
    p.loss = 2.0 - 0.4 * i;
    r.curve.push_back(p);
  }
  for (int i = 1; i <= 4; ++i) {
    RoundStat s;
    s.round = static_cast<std::uint64_t>(i);
    s.time = i * 10.0;
    s.updates = 10;
    s.mean_staleness = 0.5 * i;
    s.partial = i % 2;
    r.round_log.push_back(s);
  }
  return r;
}

TEST(MetricsTest, TimeToAccuracyFindsFirstCrossing) {
  const RunResult r = make_result();
  EXPECT_DOUBLE_EQ(time_to_accuracy(r, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(time_to_accuracy(r, 0.3), 20.0);
  EXPECT_DOUBLE_EQ(time_to_accuracy(r, 0.8), 40.0);
  EXPECT_DOUBLE_EQ(time_to_accuracy(r, 0.9), -1.0);
}

TEST(MetricsTest, TimeToAccuracyOnEmptyCurve) {
  EXPECT_DOUBLE_EQ(time_to_accuracy(RunResult{}, 0.5), -1.0);
}

TEST(MetricsTest, TimeToAccuracyReturnsFirstCrossingOnNonMonotoneCurve) {
  // Async aggregation curves dip; the milestone is the *first* crossing,
  // even if accuracy later falls back below the target.
  RunResult r;
  const double accs[] = {0.1, 0.5, 0.3, 0.6};
  for (int i = 0; i < 4; ++i) {
    AccuracyPoint p;
    p.round = static_cast<std::uint64_t>(i);
    p.time = i * 10.0;
    p.accuracy = accs[i];
    r.curve.push_back(p);
  }
  EXPECT_DOUBLE_EQ(time_to_accuracy(r, 0.4), 10.0);
  EXPECT_DOUBLE_EQ(time_to_accuracy(r, 0.55), 30.0);
}

TEST(MetricsTest, TimeToAccuracyBoundaryTargets) {
  const RunResult r = make_result();
  // Exact match on a curve point counts as reached (>=, not >).
  EXPECT_DOUBLE_EQ(time_to_accuracy(r, 0.2), 10.0);
  // A zero/negative target is met by the very first evaluation.
  EXPECT_DOUBLE_EQ(time_to_accuracy(r, -1.0), 0.0);
  // Single-point curves work.
  RunResult single;
  AccuracyPoint p;
  p.time = 5.0;
  p.accuracy = 0.4;
  single.curve.push_back(p);
  EXPECT_DOUBLE_EQ(time_to_accuracy(single, 0.4), 5.0);
  EXPECT_DOUBLE_EQ(time_to_accuracy(single, 0.41), -1.0);
}

TEST(MetricsTest, TailAccuracyAveragesLastPoints) {
  const RunResult r = make_result();
  EXPECT_NEAR(tail_accuracy(r, 1), 0.8, 1e-12);
  EXPECT_NEAR(tail_accuracy(r, 2), 0.7, 1e-12);
  EXPECT_NEAR(tail_accuracy(r, 100), 0.4, 1e-12);  // clamped to curve size
  EXPECT_DOUBLE_EQ(tail_accuracy(RunResult{}, 3), 0.0);
  EXPECT_THROW(tail_accuracy(r, 0), Error);
}

TEST(MetricsTest, CurveCsvHasHeaderAndRows) {
  const RunResult r = make_result();
  const std::string path = ::testing::TempDir() + "/curve.csv";
  write_curve_csv(r, path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "round,time,accuracy,loss");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 5);
  std::remove(path.c_str());
}

TEST(MetricsTest, RoundLogCsvHasHeaderAndRows) {
  const RunResult r = make_result();
  const std::string path = ::testing::TempDir() + "/rounds.csv";
  write_round_log_csv(r, path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "round,time,updates,mean_staleness,partial");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4);
  std::remove(path.c_str());
}

TEST(MetricsTest, ParticipationFairness) {
  RunResult r;
  r.participation = {4, 4, 4, 0, 0};
  // Active-only: three equal participants -> perfectly fair.
  EXPECT_DOUBLE_EQ(participation_fairness(r, /*active_only=*/true), 1.0);
  // Counting idle clients as zeros: (12)^2 / (5 * 48) = 0.6.
  EXPECT_NEAR(participation_fairness(r, /*active_only=*/false), 0.6, 1e-12);
  // Degenerate cases.
  RunResult empty;
  EXPECT_DOUBLE_EQ(participation_fairness(empty), 1.0);
}

TEST(MetricsTest, ParticipationFairnessActiveOnlyToggleDiverges) {
  // One dominant client: active_only sees {8, 2} while the full view adds
  // two idle zeros — the toggle must change the index accordingly.
  RunResult r;
  r.participation = {8, 2, 0, 0};
  // Jain over {8,2}: 100 / (2 * 68).
  EXPECT_NEAR(participation_fairness(r, /*active_only=*/true), 100.0 / 136.0,
              1e-12);
  // Jain over {8,2,0,0}: 100 / (4 * 68).
  EXPECT_NEAR(participation_fairness(r, /*active_only=*/false), 100.0 / 272.0,
              1e-12);
  EXPECT_GT(participation_fairness(r, true), participation_fairness(r, false));
}

TEST(MetricsTest, ParticipationFairnessAllIdleOrAllEqual) {
  RunResult idle;
  idle.participation = {0, 0, 0};
  // Active-only filters everything out -> vacuous fairness of 1.
  EXPECT_DOUBLE_EQ(participation_fairness(idle, /*active_only=*/true), 1.0);

  RunResult even;
  even.participation = {3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(participation_fairness(even, /*active_only=*/true), 1.0);
  EXPECT_DOUBLE_EQ(participation_fairness(even, /*active_only=*/false), 1.0);

  RunResult solo;
  solo.participation = {7};
  EXPECT_DOUBLE_EQ(participation_fairness(solo, /*active_only=*/true), 1.0);
  EXPECT_DOUBLE_EQ(participation_fairness(solo, /*active_only=*/false), 1.0);
}

TEST(MetricsTest, CsvRejectsBadPath) {
  EXPECT_THROW(write_curve_csv(RunResult{}, "/nonexistent-dir/c.csv"), Error);
  EXPECT_THROW(write_round_log_csv(RunResult{}, "/nonexistent-dir/r.csv"),
               Error);
}

}  // namespace
}  // namespace seafl
