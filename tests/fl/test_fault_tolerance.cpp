// End-to-end tests of the fault model (device churn, transient upload loss)
// and the server recovery policies (assignment deadlines with re-dispatch,
// upload retries with backoff, degraded round-deadline aggregation,
// pre-aggregation screening) — DESIGN.md §10.
#include <gtest/gtest.h>

#include "core/screening.h"
#include "core/seafl_strategy.h"
#include "fl/simulation.h"
#include "fl/strategies.h"
#include "obs/trace.h"

namespace seafl {
namespace {

/// Small task + fleet shared across fault-tolerance tests, plus a measured
/// clean-run time scale (churn intensities are meaningless as absolute
/// seconds, so they are sized from the fixture's own round interval).
struct Fixture {
  FlTask task;
  ModelFactory factory;
  FleetConfig fleet_config;
  double round_interval = 0.0;   ///< clean mean seconds per round
  double session_seconds = 0.0;  ///< clean mean session duration

  explicit Fixture(double pareto_shape = 1.5) {
    TaskSpec spec;
    spec.name = "synth-mnist";
    spec.num_clients = 12;
    spec.samples_per_client = 15;
    spec.test_samples = 60;
    task = make_task(spec);
    factory = make_model(task.default_model, task.input, task.num_classes);
    fleet_config.num_devices = 12;
    fleet_config.pareto_shape = pareto_shape;
    fleet_config.seed = 7;

    Fleet fleet(fleet_config);
    Simulation probe(task, factory, fleet,
                     std::make_unique<FedBuffStrategy>(), base_config());
    const RunResult r = probe.run();
    round_interval = r.final_time / static_cast<double>(r.rounds);
    // M clients feeding a K-sized buffer: a session spans ~M/K rounds.
    session_seconds = round_interval * 6.0 / 3.0;
  }

  RunConfig base_config() const {
    RunConfig c;
    c.buffer_size = 3;
    c.concurrency = 6;
    c.local_epochs = 2;
    c.batch_size = 8;
    c.sgd.learning_rate = 0.05f;
    c.max_rounds = 8;
    c.target_accuracy = 0.99;  // effectively unreachable
    c.stop_at_target = false;
    c.seed = 42;
    return c;
  }

  /// Heavy churn: ~39% of sessions crash before completing; devices come
  /// back after about one round. A generous virtual-time cap terminates
  /// passive runs that stall instead of letting them idle forever.
  RunConfig churn_config() const {
    RunConfig c = base_config();
    c.faults.mean_uptime = 2.0 * session_seconds;
    c.faults.mean_downtime = round_interval;
    c.max_virtual_seconds =
        20.0 * round_interval * static_cast<double>(c.max_rounds);
    return c;
  }

  RunResult run(StrategyPtr strategy, const RunConfig& c,
                obs::TraceSink* trace = nullptr) const {
    Fleet fleet(fleet_config);
    Simulation sim(task, factory, fleet, std::move(strategy), c);
    sim.set_trace_sink(trace);
    return sim.run();
  }
};

std::size_t count_events(const obs::TraceJournal& journal,
                         obs::TraceEventKind kind) {
  std::size_t n = 0;
  for (const auto& e : journal.events()) n += e.kind == kind ? 1 : 0;
  return n;
}

TEST(FaultToleranceTest, ChurnCrashesArePassivelyFatal) {
  const Fixture f;
  // No recovery policy: every crashed session permanently occupies one of
  // the six concurrency slots, so the run starves before its round limit.
  const auto r = f.run(std::make_unique<FedBuffStrategy>(), f.churn_config());
  EXPECT_GT(r.client_crashes, 0u);
  EXPECT_LT(r.rounds, f.base_config().max_rounds);
  EXPECT_EQ(r.deadline_expirations, 0u);
  EXPECT_EQ(r.redispatches, 0u);
}

TEST(FaultToleranceTest, DeadlinesAndRedispatchRestoreLiveness) {
  const Fixture f;
  RunConfig recovering = f.churn_config();
  recovering.faults.deadline_factor = 2.0;

  const auto passive =
      f.run(std::make_unique<FedBuffStrategy>(), f.churn_config());
  const auto healed =
      f.run(std::make_unique<FedBuffStrategy>(), recovering);

  // The recovering server expires dead sessions and hands their slots to
  // online clients; the same hazard no longer starves the run.
  EXPECT_GT(healed.client_crashes, 0u);
  EXPECT_GT(healed.deadline_expirations, 0u);
  EXPECT_GT(healed.redispatches, 0u);
  EXPECT_EQ(healed.rounds, recovering.max_rounds);
  EXPECT_GT(healed.rounds, passive.rounds);
}

TEST(FaultToleranceTest, HealthyRunsNeverExpireDeadlines) {
  // With no hazard, every upload beats its deadline (factor >= 1), so the
  // timers are pure bookkeeping: the run is bitwise identical to one
  // without them.
  const Fixture f;
  RunConfig c = f.base_config();
  const auto plain = f.run(std::make_unique<FedBuffStrategy>(), c);
  c.faults.deadline_factor = 2.0;
  const auto timed = f.run(std::make_unique<FedBuffStrategy>(), c);
  EXPECT_EQ(timed.deadline_expirations, 0u);
  EXPECT_EQ(timed.redispatches, 0u);
  EXPECT_EQ(timed.client_crashes, 0u);
  EXPECT_EQ(plain.final_weights, timed.final_weights);
  EXPECT_DOUBLE_EQ(plain.final_time, timed.final_time);
}

TEST(FaultToleranceTest, RetriesRedeliverLostUploads) {
  const Fixture f;
  RunConfig c = f.base_config();
  c.upload_loss_prob = 0.4;
  const auto dropped = f.run(std::make_unique<FedBuffStrategy>(), c);

  c.faults.max_upload_retries = 3;
  c.faults.retry_backoff = 0.5;
  c.faults.retry_backoff_cap = 4.0;
  const auto retried = f.run(std::make_unique<FedBuffStrategy>(), c);

  EXPECT_EQ(dropped.upload_retries, 0u);
  EXPECT_GT(retried.upload_retries, 0u);
  EXPECT_GT(retried.lost_uploads, 0u);  // first transmissions still fail
  EXPECT_EQ(retried.rounds, c.max_rounds);
  // A retry redelivers the *trained* update instead of discarding the
  // session, so fewer sessions are wasted: losses cost no extra downloads
  // when the retransmission succeeds.
  EXPECT_LT(retried.model_downloads - retried.model_uploads,
            dropped.model_downloads - dropped.model_uploads);
}

TEST(FaultToleranceTest, RoundDeadlineDegradesInsteadOfStalling) {
  // SEAFL's wait_for_stale holds aggregation while a straggler is over the
  // staleness limit. A round deadline converts that unbounded wait into a
  // degraded aggregation with whatever the buffer holds (>= min_updates).
  const Fixture f(/*pareto_shape=*/1.05);  // heavy tail: stragglers exist
  RunConfig waiting = f.base_config();
  waiting.staleness_limit = 1;
  waiting.wait_for_stale = true;
  SeaflConfig sc;
  sc.weights.staleness_limit = 1;
  sc.full_epochs = waiting.local_epochs;

  // Tighter than the mean round interval, so the deadline routinely fires
  // before the buffer fills and the min_updates path is exercised too.
  RunConfig degraded = waiting;
  degraded.faults.round_deadline = 0.75 * f.round_interval;
  degraded.faults.min_updates = 1;

  const auto held = f.run(std::make_unique<SeaflStrategy>(sc), waiting);
  const auto capped = f.run(std::make_unique<SeaflStrategy>(sc), degraded);

  EXPECT_EQ(held.degraded_aggregations, 0u);
  EXPECT_GT(capped.degraded_aggregations, 0u);
  EXPECT_EQ(capped.rounds, degraded.max_rounds);
  // Degraded rounds close with fewer updates, so at least one round-log
  // entry is below the buffer target.
  bool any_small = false;
  for (const auto& s : capped.round_log)
    any_small |= s.updates < degraded.buffer_size;
  EXPECT_TRUE(any_small);
  // Not waiting is the point: the same rounds finish sooner.
  EXPECT_LE(capped.final_time, held.final_time);
}

TEST(FaultToleranceTest, ScreeningEngagesAndTheJournalAgrees) {
  // Label-noise clients in a heavily non-IID world are geometrically close
  // to honest minority-class clients at this scale — the Byzantine
  // separations live in core/test_screening.cpp on synthetic vectors. What
  // the integration layer must guarantee is the quarantine loop itself:
  // rejected updates are reported consistently (counter == journal, every
  // rejection genuinely below the threshold) and quarantined clients
  // re-enter the rotation so the run keeps its full round budget.
  TaskSpec spec;
  spec.name = "synth-mnist";
  spec.num_clients = 12;
  spec.samples_per_client = 15;
  spec.test_samples = 60;
  spec.corrupt_client_fraction = 0.3;
  const FlTask task = make_task(spec);
  const ModelFactory factory =
      make_model(task.default_model, task.input, task.num_classes);
  FleetConfig fc;
  fc.num_devices = 12;
  fc.seed = 7;
  Fleet fleet(fc);

  RunConfig c;
  c.buffer_size = 3;
  c.concurrency = 6;
  c.local_epochs = 2;
  c.batch_size = 8;
  c.max_rounds = 10;
  c.target_accuracy = 0.99;
  c.stop_at_target = false;
  c.seed = 42;

  ScreeningConfig screen;
  screen.clip_multiple = 2.0;
  screen.min_cosine = 0.4;
  screen.min_buffer = 3;

  obs::TraceJournal journal;
  Simulation sim(task, factory, fleet,
                 std::make_unique<ScreenedStrategy>(
                     std::make_unique<FedBuffStrategy>(), screen),
                 c);
  sim.set_trace_sink(&journal);
  const RunResult r = sim.run();

  EXPECT_EQ(r.rounds, c.max_rounds);
  // The journal and the counters must agree exactly, and every rejection
  // records a cosine genuinely below the configured threshold.
  EXPECT_EQ(count_events(journal, obs::TraceEventKind::kScreened),
            r.screened_updates);
  for (const auto& e : journal.events())
    if (e.kind == obs::TraceEventKind::kScreened)
      EXPECT_LT(e.value, screen.min_cosine);
  EXPECT_GT(r.screened_updates, 0u);
  // Quarantine is per-update, not per-client: rejected clients restart and
  // the server still consumes a full buffer every round.
  EXPECT_EQ(r.aggregations, c.max_rounds);
}

TEST(FaultToleranceTest, TraceSinkDoesNotPerturbFaultyRuns) {
  const Fixture f;
  RunConfig c = f.churn_config();
  c.faults.deadline_factor = 2.0;
  c.faults.max_upload_retries = 2;
  c.faults.retry_backoff = 0.5;
  c.faults.retry_backoff_cap = 4.0;
  c.faults.round_deadline = 4.0 * f.round_interval;
  c.faults.min_updates = 1;
  c.upload_loss_prob = 0.2;

  obs::TraceJournal journal;
  const auto observed =
      f.run(std::make_unique<FedBuffStrategy>(), c, &journal);
  const auto blind = f.run(std::make_unique<FedBuffStrategy>(), c);

  // Bitwise identical results with and without the sink attached.
  ASSERT_EQ(observed.final_weights, blind.final_weights);
  EXPECT_DOUBLE_EQ(observed.final_time, blind.final_time);
  EXPECT_EQ(observed.participation, blind.participation);
  EXPECT_EQ(observed.client_crashes, blind.client_crashes);
  EXPECT_EQ(observed.redispatches, blind.redispatches);
  EXPECT_EQ(observed.upload_retries, blind.upload_retries);

  // The journal saw the fault lifecycle, and counters match their events.
  EXPECT_EQ(count_events(journal, obs::TraceEventKind::kCrash),
            observed.client_crashes);
  EXPECT_EQ(count_events(journal, obs::TraceEventKind::kRecover),
            observed.client_crashes);
  EXPECT_EQ(count_events(journal, obs::TraceEventKind::kDeadlineExpired),
            observed.deadline_expirations);
  EXPECT_EQ(count_events(journal, obs::TraceEventKind::kRedispatch),
            observed.redispatches);
  EXPECT_EQ(count_events(journal, obs::TraceEventKind::kRetry),
            observed.upload_retries);
  EXPECT_EQ(count_events(journal, obs::TraceEventKind::kDegradedAggregate),
            observed.degraded_aggregations);
}

TEST(FaultToleranceTest, HazardRunsAreBitwiseDeterministic) {
  // Two identical runs of every hazard knob agree down to final weights,
  // per-client participation and the per-round log.
  const Fixture f;
  std::vector<RunConfig> configs;
  {
    RunConfig loss = f.base_config();
    loss.upload_loss_prob = 0.3;
    configs.push_back(loss);

    RunConfig quant = f.base_config();
    quant.quantize_bits = 4;
    configs.push_back(quant);

    RunConfig faulty = f.churn_config();
    faulty.faults.deadline_factor = 1.5;
    faulty.faults.max_upload_retries = 2;
    faulty.upload_loss_prob = 0.2;
    configs.push_back(faulty);
  }
  for (const RunConfig& c : configs) {
    const auto a = f.run(std::make_unique<FedBuffStrategy>(), c);
    const auto b = f.run(std::make_unique<FedBuffStrategy>(), c);
    ASSERT_EQ(a.final_weights, b.final_weights);
    ASSERT_EQ(a.participation, b.participation);
    ASSERT_EQ(a.round_log.size(), b.round_log.size());
    for (std::size_t i = 0; i < a.round_log.size(); ++i) {
      EXPECT_EQ(a.round_log[i].updates, b.round_log[i].updates);
      EXPECT_DOUBLE_EQ(a.round_log[i].time, b.round_log[i].time);
    }
    EXPECT_EQ(a.lost_uploads, b.lost_uploads);
    EXPECT_EQ(a.client_crashes, b.client_crashes);
    EXPECT_DOUBLE_EQ(a.final_time, b.final_time);
  }
}

TEST(FaultToleranceTest, DefaultFaultConfigIsInert) {
  // All fault knobs off: the new counters stay zero.
  const Fixture f;
  const auto r = f.run(std::make_unique<FedBuffStrategy>(), f.base_config());
  EXPECT_EQ(r.client_crashes, 0u);
  EXPECT_EQ(r.deadline_expirations, 0u);
  EXPECT_EQ(r.redispatches, 0u);
  EXPECT_EQ(r.abandoned_slots, 0u);
  EXPECT_EQ(r.upload_retries, 0u);
  EXPECT_EQ(r.degraded_aggregations, 0u);
  EXPECT_EQ(r.screened_updates, 0u);
  EXPECT_EQ(r.clipped_updates, 0u);
  EXPECT_EQ(r.rounds, f.base_config().max_rounds);
}

}  // namespace
}  // namespace seafl
