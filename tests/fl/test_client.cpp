#include <gtest/gtest.h>

#include "fl/client.h"

namespace seafl {
namespace {

struct Fixture {
  FlTask task;
  ModelFactory factory;
  RunConfig config;

  Fixture() {
    TaskSpec spec;
    spec.name = "synth-mnist";
    spec.num_clients = 8;
    spec.samples_per_client = 25;
    spec.test_samples = 40;
    task = make_task(spec);
    factory = make_model(task.default_model, task.input, task.num_classes);
    config.local_epochs = 5;
    config.batch_size = 10;
    config.sgd.learning_rate = 0.05f;
    config.seed = 42;
  }

  ModelVector initial_weights() {
    auto model = factory();
    Rng rng(config.seed, RngPurpose::kInit);
    model->init(rng);
    return model->parameter_vector();
  }
};

TEST(ClientTrainerTest, TrainReturnsRightDimension) {
  Fixture f;
  ClientTrainer trainer(f.task, f.factory, f.config);
  const ModelVector base = f.initial_weights();
  const auto result = trainer.train(0, base, 2, 0);
  EXPECT_EQ(result.weights.size(), trainer.num_params());
  EXPECT_EQ(result.epochs, 2u);
  EXPECT_GT(result.mean_loss, 0.0);
}

TEST(ClientTrainerTest, TrainingChangesWeights) {
  Fixture f;
  ClientTrainer trainer(f.task, f.factory, f.config);
  const ModelVector base = f.initial_weights();
  const auto result = trainer.train(1, base, 1, 0);
  EXPECT_NE(result.weights, base);
}

TEST(ClientTrainerTest, DeterministicAcrossInstancesAndCallOrder) {
  Fixture f;
  ClientTrainer a(f.task, f.factory, f.config);
  ClientTrainer b(f.task, f.factory, f.config);
  const ModelVector base = f.initial_weights();

  // b trains other clients first; the (client, round) stream must make the
  // target session identical regardless.
  b.train(3, base, 2, 0);
  b.train(5, base, 1, 7);
  const auto ra = a.train(2, base, 3, 4);
  const auto rb = b.train(2, base, 3, 4);
  EXPECT_EQ(ra.weights, rb.weights);
  EXPECT_DOUBLE_EQ(ra.mean_loss, rb.mean_loss);
}

TEST(ClientTrainerTest, PartialSessionIsPrefixOfFullSession) {
  // The SEAFL^2 invariant: training e < E epochs produces exactly the state
  // the full session had after e epochs. We verify by comparing a 2-epoch
  // session to a 3-epoch session re-run from the same base: the first two
  // epochs shuffle identically, so re-training with epochs=2 must match the
  // 2-epoch result bit-for-bit.
  Fixture f;
  ClientTrainer trainer(f.task, f.factory, f.config);
  const ModelVector base = f.initial_weights();

  const auto two_a = trainer.train(4, base, 2, 9);
  const auto three = trainer.train(4, base, 3, 9);
  const auto two_b = trainer.train(4, base, 2, 9);
  EXPECT_EQ(two_a.weights, two_b.weights);
  EXPECT_NE(two_a.weights, three.weights);
}

TEST(ClientTrainerTest, DifferentRoundsShuffleDifferently) {
  Fixture f;
  ClientTrainer trainer(f.task, f.factory, f.config);
  const ModelVector base = f.initial_weights();
  const auto r0 = trainer.train(0, base, 1, 0);
  const auto r1 = trainer.train(0, base, 1, 1);
  EXPECT_NE(r0.weights, r1.weights);
}

TEST(ClientTrainerTest, LossDecreasesOverEpochs) {
  Fixture f;
  ClientTrainer trainer(f.task, f.factory, f.config);
  const ModelVector base = f.initial_weights();
  const auto one = trainer.train(2, base, 1, 0);
  const auto many = trainer.train(2, base, 8, 0);
  EXPECT_LT(many.mean_loss, one.mean_loss);
}

TEST(ClientTrainerTest, ClientSamplesMatchPartition) {
  Fixture f;
  ClientTrainer trainer(f.task, f.factory, f.config);
  for (std::size_t k = 0; k < f.task.num_clients(); ++k)
    EXPECT_EQ(trainer.client_samples(k), f.task.client_samples(k));
}

TEST(ClientTrainerTest, ProximalTermPullsTowardBase) {
  // With a huge proximal coefficient the trained model must stay closer to
  // the base weights than plain local SGD.
  Fixture f;
  ClientTrainer plain(f.task, f.factory, f.config);
  RunConfig prox_config = f.config;
  prox_config.proximal_mu = 5.0;
  ClientTrainer prox(f.task, f.factory, prox_config);

  const ModelVector base = f.initial_weights();
  const auto free_run = plain.train(0, base, 3, 0);
  const auto prox_run = prox.train(0, base, 3, 0);

  auto dist = [&](const ModelVector& w) {
    double acc = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i)
      acc += (w[i] - base[i]) * (w[i] - base[i]);
    return acc;
  };
  EXPECT_LT(dist(prox_run.weights), dist(free_run.weights) * 0.9);
}

TEST(ClientTrainerTest, ProximalZeroMatchesPlain) {
  Fixture f;
  RunConfig zero = f.config;
  zero.proximal_mu = 0.0;
  ClientTrainer a(f.task, f.factory, f.config);
  ClientTrainer b(f.task, f.factory, zero);
  const ModelVector base = f.initial_weights();
  EXPECT_EQ(a.train(1, base, 2, 0).weights, b.train(1, base, 2, 0).weights);
}

TEST(ClientTrainerTest, FrozenLayersKeepBaseWeights) {
  // The synth-mnist MLP is Dense/ReLU/Dense/ReLU/Dense (5 layers). Freezing
  // the first two layers must leave the first Dense's parameters at their
  // base values while the rest train.
  Fixture f;
  ClientTrainer trainer(f.task, f.factory, f.config);
  const ModelVector base = f.initial_weights();
  const auto r = trainer.train(0, base, 2, 0, /*frozen_layers=*/2);

  // First Dense of the 32->32->16->10 MLP: 32*32 weights + 32 biases.
  const std::size_t first_dense = 32 * 32 + 32;
  for (std::size_t i = 0; i < first_dense; ++i)
    ASSERT_EQ(r.weights[i], base[i]) << "frozen weight " << i << " moved";
  bool rest_changed = false;
  for (std::size_t i = first_dense; i < base.size(); ++i)
    rest_changed |= r.weights[i] != base[i];
  EXPECT_TRUE(rest_changed);
}

TEST(ClientTrainerTest, FreezingAllLayersRejected) {
  Fixture f;
  ClientTrainer trainer(f.task, f.factory, f.config);
  const ModelVector base = f.initial_weights();
  EXPECT_THROW(trainer.train(0, base, 1, 0, /*frozen_layers=*/5), Error);
}

TEST(ClientTrainerTest, RejectsBadArguments) {
  Fixture f;
  ClientTrainer trainer(f.task, f.factory, f.config);
  const ModelVector base = f.initial_weights();
  EXPECT_THROW(trainer.train(99, base, 1, 0), Error);
  EXPECT_THROW(trainer.train(0, ModelVector(3), 1, 0), Error);
  EXPECT_THROW(trainer.train(0, base, 0, 0), Error);
}

}  // namespace
}  // namespace seafl
