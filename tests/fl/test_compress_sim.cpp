// End-to-end compression behaviour inside the virtual-clock Simulation:
// determinism under faults, exact byte accounting, the bandwidth model's
// effect on finish time, and residual correctness across re-dispatch paths.
#include <gtest/gtest.h>

#include "compress/codec.h"
#include "fl/simulation.h"
#include "fl/strategies.h"

namespace seafl {
namespace {

struct Fixture {
  FlTask task;
  ModelFactory factory;
  FleetConfig fleet_config;

  explicit Fixture(double pareto_shape = 1.5) {
    TaskSpec spec;
    spec.name = "synth-mnist";
    spec.num_clients = 12;
    spec.samples_per_client = 15;
    spec.test_samples = 60;
    task = make_task(spec);
    factory = make_model(task.default_model, task.input, task.num_classes);
    fleet_config.num_devices = 12;
    fleet_config.pareto_shape = pareto_shape;
    fleet_config.seed = 7;
  }

  RunConfig base_config() const {
    RunConfig c;
    c.buffer_size = 3;
    c.concurrency = 6;
    c.local_epochs = 2;
    c.batch_size = 8;
    c.sgd.learning_rate = 0.05f;
    c.max_rounds = 10;
    c.target_accuracy = 0.99;
    c.stop_at_target = false;
    c.seed = 42;
    return c;
  }

  RunResult run(const RunConfig& c) const {
    Fleet fleet(fleet_config);
    Simulation sim(task, factory, fleet,
                   std::make_unique<FedBuffStrategy>(), c);
    return sim.run();
  }
};

RunConfig with_codec(RunConfig c, const char* name) {
  compress::apply_codec_name(c.compression, name);
  return c;
}

void expect_bitwise_equal(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size());
  for (std::size_t i = 0; i < a.final_weights.size(); ++i)
    ASSERT_EQ(a.final_weights[i], b.final_weights[i]) << "weight " << i;
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.mean_staleness, b.mean_staleness);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_EQ(a.upload_wire_bytes, b.upload_wire_bytes);
  EXPECT_EQ(a.upload_raw_bytes, b.upload_raw_bytes);
}

TEST(CompressSimTest, CompressedRunsAreDeterministic) {
  Fixture f;
  for (const char* name : {"int8", "int4", "topk"}) {
    const RunConfig c = with_codec(f.base_config(), name);
    expect_bitwise_equal(f.run(c), f.run(c));
  }
}

TEST(CompressSimTest, DeterministicUnderFaultsAndLoss) {
  // Lost uploads, churn and deadline re-dispatch all interact with the
  // residual lifecycle; two identical runs must still agree bitwise.
  Fixture f(/*pareto_shape=*/1.05);
  RunConfig c = with_codec(f.base_config(), "topk");
  c.compression.error_feedback = true;
  c.upload_loss_prob = 0.25;
  c.faults.mean_uptime = 120.0;
  c.faults.mean_downtime = 30.0;
  c.faults.deadline_factor = 3.0;
  c.max_rounds = 8;
  const auto a = f.run(c);
  const auto b = f.run(c);
  EXPECT_GT(a.lost_uploads, 0u);
  expect_bitwise_equal(a, b);
}

TEST(CompressSimTest, EagerMatchesLazyWithErrorFeedback) {
  // The speculative executor replays sessions out of order; the residual is
  // server-side state advanced at arrival, so results must stay bitwise
  // identical to the lazy path.
  Fixture f;
  RunConfig c = with_codec(f.base_config(), "topk");
  c.compression.error_feedback = true;
  c.max_rounds = 8;
  const auto lazy = f.run(c);
  c.eager_training = true;
  c.sim_jobs = 4;
  const auto eager = f.run(c);
  expect_bitwise_equal(lazy, eager);
}

TEST(CompressSimTest, WireBytesMatchCodecSizeExactly) {
  Fixture f;
  const std::size_t dim = f.factory()->num_parameters();
  for (const char* name : {"float32", "int8", "int4", "topk"}) {
    const RunConfig c = with_codec(f.base_config(), name);
    const auto r = f.run(c);
    std::size_t per_upload = 0;
    if (c.compression.enabled()) {
      per_upload = compress::make_codec(c.compression)->encoded_bytes_for(dim);
    } else {
      per_upload = compress::transfer_bytes(dim, 0);
    }
    // Every upload has the same data-independent size, so the totals divide
    // exactly — this is the invariant that lets the sim price uploads at
    // dispatch time.
    EXPECT_EQ(r.upload_wire_bytes, r.model_uploads * per_upload) << name;
    EXPECT_EQ(r.upload_raw_bytes,
              r.model_uploads * compress::transfer_bytes(dim, 0))
        << name;
    if (c.compression.enabled() &&
        c.compression.codec != compress::CodecKind::kIdentity) {
      EXPECT_LT(r.upload_wire_bytes, r.upload_raw_bytes) << name;
    }
  }
}

TEST(CompressSimTest, TightUplinkMakesCompressionFinishSooner) {
  // The whole point of the bandwidth model: when upload time is dominated by
  // bytes/uplink, int8 finishes the same rounds in less virtual time.
  Fixture f;
  const std::size_t dim = f.factory()->num_parameters();
  // Price the uplink so one float32 upload costs several seconds.
  f.fleet_config.mean_uplink_bytes_per_sec =
      static_cast<double>(compress::transfer_bytes(dim, 0)) / 5.0;
  const auto full = f.run(with_codec(f.base_config(), "float32"));
  const auto int8 = f.run(with_codec(f.base_config(), "int8"));
  EXPECT_EQ(full.rounds, int8.rounds);
  EXPECT_LT(int8.final_time, full.final_time);
}

TEST(CompressSimTest, ZeroUplinkMeansBandwidthIsFree) {
  // mean_uplink_bytes_per_sec = 0 must be byte-for-byte the pre-bandwidth
  // behaviour: payload size cannot influence timing.
  Fixture f;
  const auto full = f.run(with_codec(f.base_config(), "float32"));
  const auto int8 = f.run(with_codec(f.base_config(), "int8"));
  EXPECT_EQ(full.final_time, int8.final_time);
}

TEST(CompressSimTest, CompressedRunsStillLearn) {
  Fixture f;
  for (const char* name : {"int8", "topk"}) {
    RunConfig c = with_codec(f.base_config(), name);
    c.max_rounds = 20;
    const auto r = f.run(c);
    EXPECT_GT(r.final_accuracy, r.curve.front().accuracy + 0.3) << name;
  }
}

TEST(CompressSimTest, ErrorFeedbackHelpsCoarseTopK) {
  // Dropping 90% of coordinates without carrying the error loses mass every
  // round; the residual recovers most of it.
  Fixture f;
  RunConfig c = with_codec(f.base_config(), "topk");
  c.compression.topk_fraction = 0.1;
  c.max_rounds = 20;
  c.compression.error_feedback = true;
  const auto with_ef = f.run(c);
  c.compression.error_feedback = false;
  const auto without = f.run(c);
  EXPECT_GT(with_ef.final_accuracy, without.final_accuracy);
}

TEST(CompressSimTest, LegacyQuantizeBitsPathUnchanged) {
  // quantize_bits is the pre-codec in-place path; it must keep working and
  // keep its own byte accounting (no SEAFLCMP container on the wire).
  Fixture f;
  const std::size_t dim = f.factory()->num_parameters();
  RunConfig c = f.base_config();
  c.quantize_bits = 8;
  const auto r = f.run(c);
  EXPECT_GT(r.final_accuracy, r.curve.front().accuracy);
  EXPECT_EQ(r.upload_wire_bytes,
            r.model_uploads * compress::transfer_bytes(dim, 8));
}

TEST(CompressSimTest, ConflictingKnobsRejected) {
  Fixture f;
  Fleet fleet(f.fleet_config);
  RunConfig c = with_codec(f.base_config(), "int8");
  c.quantize_bits = 8;  // legacy and first-class compression together
  EXPECT_THROW(Simulation(f.task, f.factory, fleet,
                          std::make_unique<FedBuffStrategy>(), c),
               Error);
}

}  // namespace
}  // namespace seafl
