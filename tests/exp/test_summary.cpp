#include "exp/summary.h"

#include <gtest/gtest.h>

#include <cmath>

namespace seafl::exp {
namespace {

TEST(SummaryTest, SummarizeKnownValues) {
  const double values[] = {1.0, 2.0, 3.0, 4.0};
  const SummaryStat s = summarize(values);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  // Sample variance of {1,2,3,4} is 5/3.
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(s.ci95, 1.96 * std::sqrt(5.0 / 3.0) / 2.0, 1e-12);
}

TEST(SummaryTest, SummarizeDegenerateCases) {
  EXPECT_EQ(summarize({}).count, 0u);
  const double one[] = {7.0};
  const SummaryStat s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_EQ(s.stddev, 0.0);  // undefined for n=1; reported as 0
  EXPECT_EQ(s.ci95, 0.0);
}

/// Fabricates a seed replicate of an arm without running a simulation.
ArmResult fake_result(const std::string& algorithm, std::uint64_t seed,
                      double final_accuracy, double time_to_target) {
  ArmResult r;
  r.spec.algorithm = algorithm;
  apply_override(r.spec, "seed", std::to_string(seed));
  r.spec.label = "algorithm=" + algorithm + " seed=" + std::to_string(seed);
  r.hash = config_hash(r.spec);
  r.result.final_accuracy = final_accuracy;
  r.result.time_to_target = time_to_target;
  r.result.curve = {{0.0, 0, final_accuracy, 1.0}};
  r.result.rounds = 5;
  return r;
}

TEST(SummaryTest, GroupsSeedReplicatesAndStripsSeedToken) {
  const std::vector<ArmResult> results = {
      fake_result("seafl", 42, 0.8, 100.0),
      fake_result("seafl", 1042, 0.9, -1.0),  // never reached the target
      fake_result("fedbuff", 42, 0.6, 300.0),
      fake_result("fedbuff", 1042, 0.7, 500.0),
  };
  const std::vector<ArmSummary> summaries = summarize_by_arm(results);
  ASSERT_EQ(summaries.size(), 2u);

  // First-appearance order, seed token stripped from the label.
  EXPECT_EQ(summaries[0].label, "algorithm=seafl");
  EXPECT_EQ(summaries[1].label, "algorithm=fedbuff");

  EXPECT_EQ(summaries[0].seeds, 2u);
  EXPECT_EQ(summaries[0].reached, 1u);  // only the seed-42 replicate
  // time-to-target statistics cover reached replicates only.
  EXPECT_EQ(summaries[0].time_to_target.count, 1u);
  EXPECT_DOUBLE_EQ(summaries[0].time_to_target.mean, 100.0);
  EXPECT_DOUBLE_EQ(summaries[0].final_accuracy.mean, 0.85);

  EXPECT_EQ(summaries[1].reached, 2u);
  EXPECT_DOUBLE_EQ(summaries[1].time_to_target.mean, 400.0);
}

TEST(SummaryTest, RowMatchesHeaderWidth) {
  const std::vector<ArmResult> results = {fake_result("seafl", 42, 0.8, 10.0)};
  const std::vector<ArmSummary> summaries = summarize_by_arm(results);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summary_row(summaries[0]).size(), summary_header().size());
}

TEST(SummaryTest, SweepJsonCarriesArmsAndSummaries) {
  const std::vector<ArmResult> results = {
      fake_result("seafl", 42, 0.8, 100.0),
      fake_result("seafl", 1042, 0.9, 120.0),
  };
  const std::vector<ArmSummary> summaries = summarize_by_arm(results);
  const Json doc = sweep_to_json(results, summaries);
  ASSERT_EQ(doc.at("arms").as_array().size(), 2u);
  ASSERT_EQ(doc.at("summaries").as_array().size(), 1u);
  const Json& arm = doc.at("arms").as_array()[0];
  EXPECT_EQ(arm.at("hash").as_string(), results[0].hash);
  EXPECT_EQ(arm.at("config").as_string(), canonical_config(results[0].spec));
  EXPECT_FALSE(arm.at("from_cache").as_bool());
  EXPECT_EQ(doc.at("summaries").as_array()[0].at("seeds").as_u64(), 2u);
  // The artifact round-trips through the parser (valid, canonical JSON).
  EXPECT_EQ(Json::parse(doc.dump()).dump(), doc.dump());
}

}  // namespace
}  // namespace seafl::exp
