// Runner integration tests on a deliberately tiny world: parallel execution
// must be bitwise-identical to serial, cache hits must skip simulations, and
// duplicate arms must be executed once. These run real simulations, so the
// binary carries the "slow" ctest label.
#include "exp/runner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/cache.h"
#include "exp/summary.h"

namespace seafl::exp {
namespace {

namespace fs = std::filesystem;

/// An 8-client synth-mnist world small enough for a sub-second simulation.
SweepSpec tiny_sweep() {
  SweepSpec sweep;
  sweep.base.algorithm = "seafl";
  sweep.base.world.task.num_clients = 8;
  sweep.base.world.task.samples_per_client = 10;
  sweep.base.world.task.test_samples = 60;
  sweep.base.world.fleet.num_devices = 8;
  sweep.base.params.concurrency = 4;
  sweep.base.params.buffer_size = 2;
  sweep.base.params.max_rounds = 3;
  sweep.base.params.local_epochs = 1;
  sweep.base.params.batch_size = 5;
  sweep.base.params.target_accuracy = 0.99;  // effectively never reached
  return sweep;
}

RunnerOptions quiet(std::size_t jobs) {
  RunnerOptions opts;
  opts.jobs = jobs;
  opts.use_cache = false;
  opts.progress = false;
  return opts;
}

/// Full-fidelity comparison via the canonical serialization: every persisted
/// field (curve, round log, counters) must match bit-for-bit.
std::string fingerprint(const std::vector<ArmResult>& results) {
  std::string out;
  for (const ArmResult& r : results) {
    out += r.hash + "\n" + result_to_json(r.result).dump() + "\n";
  }
  return out;
}

TEST(RunnerTest, ParallelIsBitwiseIdenticalToSerial) {
  SweepSpec sweep = tiny_sweep();
  sweep.axes.push_back(make_axis("algorithm", {"seafl", "fedbuff"}));
  add_seed_axis(sweep, 2, 42);

  Runner serial(quiet(1));
  const std::vector<ArmResult> a = serial.run(sweep);
  Runner parallel(quiet(4));
  const std::vector<ArmResult> b = parallel.run(sweep);

  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(serial.simulations_run(), 4u);
  EXPECT_EQ(parallel.simulations_run(), 4u);
  EXPECT_EQ(fingerprint(a), fingerprint(b));

  // Results land in enumeration order regardless of completion order.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.label, b[i].spec.label);
  }
}

TEST(RunnerTest, EagerTrainingIsBitwiseIdenticalAtAnyJobs) {
  // Arm-level parallelism and intra-arm eager speculation share one pool;
  // every combination must reproduce the plain serial sweep bit for bit.
  SweepSpec sweep = tiny_sweep();
  sweep.axes.push_back(make_axis("algorithm", {"seafl", "seafl2"}));

  Runner baseline(quiet(1));
  const std::string expected = fingerprint(baseline.run(sweep));

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{3}}) {
    RunnerOptions opts = quiet(jobs);
    opts.eager_training = true;
    opts.sim_jobs = 2;
    Runner eager(opts);
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    EXPECT_EQ(fingerprint(eager.run(sweep)), expected);
  }
}

TEST(RunnerTest, WarmCacheExecutesZeroSimulations) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "seafl_runner_cache_test";
  fs::remove_all(dir);

  SweepSpec sweep = tiny_sweep();
  add_seed_axis(sweep, 2, 42);

  RunnerOptions opts;
  opts.cache_dir = dir.string();
  opts.progress = false;

  Runner cold(opts);
  const std::vector<ArmResult> first = cold.run(sweep);
  EXPECT_EQ(cold.simulations_run(), 2u);
  EXPECT_FALSE(first[0].from_cache);

  Runner warm(opts);
  const std::vector<ArmResult> second = warm.run(sweep);
  EXPECT_EQ(warm.simulations_run(), 0u);
  EXPECT_TRUE(second[0].from_cache);
  EXPECT_TRUE(second[1].from_cache);
  EXPECT_EQ(fingerprint(first), fingerprint(second));

  // --refresh ignores the entries and re-executes.
  RunnerOptions refresh = opts;
  refresh.refresh = true;
  Runner fresh(refresh);
  const std::vector<ArmResult> third = fresh.run(sweep);
  EXPECT_EQ(fresh.simulations_run(), 2u);
  EXPECT_EQ(fingerprint(first), fingerprint(third));

  fs::remove_all(dir);
}

TEST(RunnerTest, DuplicateArmsRunOnce) {
  const std::vector<ArmSpec> arms(2, tiny_sweep().base);
  Runner runner(quiet(1));
  const std::vector<ArmResult> results = runner.run(arms);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(runner.simulations_run(), 1u);
  EXPECT_EQ(results[0].hash, results[1].hash);
  EXPECT_EQ(result_to_json(results[0].result).dump(),
            result_to_json(results[1].result).dump());
}

TEST(RunnerTest, TargetSentinelResolvesToTaskDefault) {
  // target < 0 means "use the task's default" (0.90 for synth-mnist): with
  // an easy dataset and a few rounds the run may or may not reach it, but
  // the resolved config must differ from an explicit low target.
  SweepSpec sweep = tiny_sweep();
  sweep.base.params.target_accuracy = -1.0;
  sweep.base.params.stop_at_target = false;

  Runner runner(quiet(1));
  const std::vector<ArmResult> results = runner.run(sweep);
  ASSERT_EQ(results.size(), 1u);
  // The sentinel (not the resolved value) is what the hash covers.
  EXPECT_NE(canonical_config(results[0].spec).find("target=-1"),
            std::string::npos);
}

TEST(RunnerTest, TraceDirWritesJournalsAndForcesExecution) {
  const fs::path cache_dir =
      fs::path(::testing::TempDir()) / "seafl_runner_trace_cache";
  const fs::path trace_dir =
      fs::path(::testing::TempDir()) / "seafl_runner_traces";
  fs::remove_all(cache_dir);
  fs::remove_all(trace_dir);

  SweepSpec sweep = tiny_sweep();
  RunnerOptions opts;
  opts.cache_dir = cache_dir.string();
  opts.progress = false;

  // Warm the cache first so the trace run demonstrably bypasses it.
  Runner warmup(opts);
  const std::vector<ArmResult> baseline = warmup.run(sweep);
  EXPECT_EQ(warmup.simulations_run(), 1u);

  opts.trace_dir = trace_dir.string();
  Runner tracer(opts);
  const std::vector<ArmResult> traced = tracer.run(sweep);
  EXPECT_EQ(tracer.simulations_run(), 1u);  // cache hit skipped on purpose
  EXPECT_FALSE(traced[0].from_cache);
  EXPECT_EQ(fingerprint(baseline), fingerprint(traced));  // tracing is inert

  const fs::path chrome = trace_dir / (traced[0].hash + ".trace.json");
  const fs::path jsonl = trace_dir / (traced[0].hash + ".jsonl");
  ASSERT_TRUE(fs::exists(chrome));
  ASSERT_TRUE(fs::exists(jsonl));

  std::ifstream in(chrome);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  EXPECT_FALSE(doc.at("traceEvents").as_array().empty());

  std::ifstream lines(jsonl);
  std::string line;
  std::size_t uploads = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const Json event = Json::parse(line);
    if (event.at("event").as_string() == "upload") ++uploads;
  }
  EXPECT_EQ(uploads, traced[0].result.model_uploads);

  fs::remove_all(cache_dir);
  fs::remove_all(trace_dir);
}

TEST(RunnerTest, MetricsWritesPerArmSummaries) {
  const fs::path cache_dir =
      fs::path(::testing::TempDir()) / "seafl_runner_metrics_cache";
  fs::remove_all(cache_dir);

  SweepSpec sweep = tiny_sweep();
  sweep.axes.push_back(make_axis("algorithm", {"seafl", "fedbuff"}));
  RunnerOptions opts;
  opts.cache_dir = cache_dir.string();
  opts.progress = false;
  opts.metrics = true;
  opts.jobs = 2;  // exercise the per-thread attribution path

  Runner runner(opts);
  const std::vector<ArmResult> results = runner.run(sweep);
  ASSERT_EQ(results.size(), 2u);

  for (const ArmResult& r : results) {
    const fs::path path = cache_dir / (r.hash + ".metrics.json");
    ASSERT_TRUE(fs::exists(path)) << path;
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const Json doc = Json::parse(buffer.str());
    EXPECT_EQ(doc.at("hash").as_string(), r.hash);
    EXPECT_EQ(doc.at("label").as_string(), r.spec.label);
    EXPECT_GT(doc.at("wall_seconds").as_double(), 0.0);
    // Each arm trained and aggregated, so its own phase deltas are non-zero.
    const Json& counters = doc.at("metrics").at("counters");
    EXPECT_GT(counters.at("fl.client_train.calls").as_u64(), 0u);
    EXPECT_GT(counters.at("fl.aggregate.calls").as_u64(), 0u);
    EXPECT_GT(counters.at("tensor.gemm.calls").as_u64(), 0u);
    const Json& gemm = doc.at("metrics").at("histograms").at(
        "tensor.gemm.seconds");
    EXPECT_EQ(gemm.at("count").as_u64(),
              counters.at("tensor.gemm.calls").as_u64());
  }
  fs::remove_all(cache_dir);
}

TEST(RunnerTest, SummariesComposeWithRunnerOutput) {
  SweepSpec sweep = tiny_sweep();
  add_seed_axis(sweep, 2, 42);
  Runner runner(quiet(2));
  const std::vector<ArmResult> results = runner.run(sweep);
  const std::vector<ArmSummary> summaries = summarize_by_arm(results);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].seeds, 2u);
  EXPECT_EQ(summaries[0].final_accuracy.count, 2u);
}

}  // namespace
}  // namespace seafl::exp
