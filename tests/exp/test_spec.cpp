#include "exp/spec.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace seafl::exp {
namespace {

TEST(SpecTest, MakeAxisAutoLabels) {
  const Axis axis = make_axis("buffer", {"2", "5"});
  ASSERT_EQ(axis.values.size(), 2u);
  EXPECT_EQ(axis.values[0].value, "2");
  EXPECT_TRUE(axis.values[0].label.empty());  // composed as "buffer=2"
}

TEST(SpecTest, EnumerateGridRowMajorLastAxisFastest) {
  SweepSpec sweep;
  sweep.axes.push_back(make_axis("buffer", {"2", "5"}));
  sweep.axes.push_back(make_axis("epochs", {"1", "3", "4"}));
  const std::vector<ArmSpec> arms = enumerate(sweep);
  ASSERT_EQ(arms.size(), 6u);
  // buffer varies slowest, epochs fastest.
  EXPECT_EQ(arms[0].label, "buffer=2 epochs=1");
  EXPECT_EQ(arms[1].label, "buffer=2 epochs=3");
  EXPECT_EQ(arms[2].label, "buffer=2 epochs=4");
  EXPECT_EQ(arms[3].label, "buffer=5 epochs=1");
  EXPECT_EQ(arms[5].label, "buffer=5 epochs=4");
  EXPECT_EQ(arms[0].params.buffer_size, 2u);
  EXPECT_EQ(arms[0].params.local_epochs, 1u);
  EXPECT_EQ(arms[5].params.buffer_size, 5u);
  EXPECT_EQ(arms[5].params.local_epochs, 4u);
}

TEST(SpecTest, LaterAxisWinsOnFieldCollision) {
  SweepSpec sweep;
  sweep.axes.push_back(make_axis("buffer", {"2"}));
  sweep.axes.push_back(make_axis("buffer", {"9"}));
  const std::vector<ArmSpec> arms = enumerate(sweep);
  ASSERT_EQ(arms.size(), 1u);
  EXPECT_EQ(arms[0].params.buffer_size, 9u);
}

TEST(SpecTest, AxisValueExtraOverridesApplyAfterItsField) {
  // The fig2a pattern: K=1 also switches the preset to fedasync.
  Axis axis;
  axis.field = "buffer";
  axis.values.push_back({"1", "K=1", {{"algorithm", "fedasync"}}});
  axis.values.push_back({"10", "K=10", {}});
  SweepSpec sweep;
  sweep.base.algorithm = "fedbuff";
  sweep.axes.push_back(axis);
  const std::vector<ArmSpec> arms = enumerate(sweep);
  ASSERT_EQ(arms.size(), 2u);
  EXPECT_EQ(arms[0].algorithm, "fedasync");
  EXPECT_EQ(arms[0].params.buffer_size, 1u);
  EXPECT_EQ(arms[0].label, "K=1");
  EXPECT_EQ(arms[1].algorithm, "fedbuff");
  EXPECT_EQ(arms[1].label, "K=10");
}

TEST(SpecTest, ApplyOverrideRejectsUnknownFieldAndBadValue) {
  ArmSpec spec;
  EXPECT_THROW(apply_override(spec, "no-such-field", "1"), Error);
  EXPECT_THROW(apply_override(spec, "buffer", "many"), Error);
  EXPECT_THROW(apply_override(spec, "stop-at-target", "maybe"), Error);
  // Codec selectors are validated at enumeration time, not mid-run.
  EXPECT_THROW(apply_override(spec, "codec", "gzip"), Error);
  apply_override(spec, "codec", "topk");
  EXPECT_EQ(spec.params.codec, "topk");
}

TEST(SpecTest, SeedCompoundAliasSetsAllThreeSeeds) {
  ArmSpec spec;
  apply_override(spec, "seed", "777");
  EXPECT_EQ(spec.world.task.seed, 777u);
  EXPECT_EQ(spec.world.fleet.seed, 777u);
  EXPECT_EQ(spec.params.seed, 777u);
}

TEST(SpecTest, StalenessAcceptsInf) {
  ArmSpec spec;
  apply_override(spec, "staleness", "inf");
  EXPECT_EQ(spec.params.staleness_limit, kNoStalenessLimit);
  EXPECT_NE(canonical_config(spec).find("staleness=inf"), std::string::npos);
  apply_override(spec, "beta", "7");
  EXPECT_EQ(spec.params.staleness_limit, 7u);
}

TEST(SpecTest, CanonicalConfigIndependentOfConstructionOrder) {
  ArmSpec a;
  apply_override(a, "buffer", "5");
  apply_override(a, "lr", "0.1");
  apply_override(a, "algorithm", "fedbuff");

  ArmSpec b;
  apply_override(b, "algorithm", "fedbuff");
  apply_override(b, "lr", "0.1");
  apply_override(b, "buffer", "5");
  b.label = "a different display label";

  // Same final fields => same canonical config and hash, regardless of the
  // order overrides were applied in or of the display label.
  EXPECT_EQ(canonical_config(a), canonical_config(b));
  EXPECT_EQ(config_hash(a), config_hash(b));
}

TEST(SpecTest, HashCoversEveryResultDeterminingField) {
  // One representative override per serialized field; each must change the
  // hash. Mirrors the FieldBinding table in spec.cpp — a new knob there
  // should be added here too.
  const std::vector<std::pair<const char*, const char*>> overrides = {
      {"algorithm", "fedavg"},  {"task", "synth-emnist"},
      {"task-clients", "7"},    {"samples", "13"},
      {"test-samples", "111"},  {"dirichlet", "0.77"},
      {"corrupt", "0.2"},       {"task-seed", "9"},
      {"devices", "17"},        {"pareto", "1.11"},
      {"cap", "3.5"},           {"spuw", "0.33"},
      {"zipf-s", "2.2"},        {"max-idle", "7"},
      {"idle-scale", "0.5"},    {"latency", "0.9"},
      {"fleet-seed", "8"},      {"buffer", "3"},
      {"concurrency", "9"},     {"staleness", "77"},
      {"epochs", "2"},          {"batch", "7"},
      {"lr", "0.123"},          {"clip", "1.5"},
      {"alpha", "4.5"},         {"mu", "0.25"},
      {"vartheta", "0.6"},      {"target", "0.55"},
      {"stop-at-target", "false"}, {"rounds", "9"},
      {"max-seconds", "123"},   {"eval-every", "3"},
      {"eval-subset", "50"},    {"run-seed", "5"},
      {"uplink", "200000"},     {"codec", "int8"},
      {"codec-bits", "6"},      {"topk", "0.05"},
      {"error-feedback", "false"},
  };
  const ArmSpec base;
  std::set<std::string> hashes{config_hash(base)};
  for (const auto& [field, value] : overrides) {
    ArmSpec spec = base;
    apply_override(spec, field, value);
    EXPECT_TRUE(hashes.insert(config_hash(spec)).second)
        << "override " << field << "=" << value << " did not change the hash";
  }
}

TEST(SpecTest, SeedlessKeyGroupsSeedReplicates) {
  ArmSpec a;
  apply_override(a, "seed", "42");
  ArmSpec b = a;
  apply_override(b, "seed", "1042");
  EXPECT_NE(config_hash(a), config_hash(b));
  EXPECT_EQ(seedless_key(a), seedless_key(b));

  ArmSpec c = a;
  apply_override(c, "buffer", "3");
  EXPECT_NE(seedless_key(a), seedless_key(c));
}

TEST(SpecTest, AddSeedAxisUsesDerivedSeedConvention) {
  SweepSpec sweep;
  sweep.axes.push_back(make_axis("algorithm", {"seafl", "fedbuff"}));
  add_seed_axis(sweep, 3, 42);
  const std::vector<ArmSpec> arms = enumerate(sweep);
  ASSERT_EQ(arms.size(), 6u);
  // Seed axis is appended, so it varies fastest.
  EXPECT_EQ(arms[0].label, "algorithm=seafl seed=42");
  EXPECT_EQ(arms[1].label, "algorithm=seafl seed=1042");
  EXPECT_EQ(arms[2].label, "algorithm=seafl seed=2042");
  EXPECT_EQ(arms[2].params.seed, 2042u);
  EXPECT_EQ(arms[2].world.task.seed, 2042u);
  EXPECT_EQ(arms[2].world.fleet.seed, 2042u);
}

}  // namespace
}  // namespace seafl::exp
