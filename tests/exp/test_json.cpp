#include "exp/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"

namespace seafl::exp {
namespace {

TEST(JsonTest, DumpIsCanonicalWithSortedKeys) {
  JsonObject o;
  o["zeta"] = 1;
  o["alpha"] = true;
  o["mid"] = "x";
  EXPECT_EQ(Json(o).dump(), R"({"alpha":true,"mid":"x","zeta":1})");
}

TEST(JsonTest, IntegralDoublesPrintWithoutExponent) {
  EXPECT_EQ(Json(0).dump(), "0");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3.0).dump(), "-3");
  EXPECT_EQ(Json(std::uint64_t{1} << 40).dump(), "1099511627776");
}

TEST(JsonTest, DoubleRoundTripIsBitExact) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           -2.5e-17,
                           3.141592653589793,
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::denorm_min()};
  for (const double v : values) {
    const Json parsed = Json::parse(Json(v).dump());
    EXPECT_EQ(parsed.as_double(), v) << Json(v).dump();
  }
}

TEST(JsonTest, ParseHandlesNestedStructures) {
  const Json doc =
      Json::parse(R"({"a":[1,2,{"b":null}],"c":"s\"t\n","d":false})");
  EXPECT_EQ(doc.at("a").as_array().size(), 3u);
  EXPECT_TRUE(doc.at("a").as_array()[2].at("b").is_null());
  EXPECT_EQ(doc.at("c").as_string(), "s\"t\n");
  EXPECT_FALSE(doc.at("d").as_bool());
  EXPECT_TRUE(doc.contains("a"));
  EXPECT_FALSE(doc.contains("z"));
}

TEST(JsonTest, ParseRoundTripsDump) {
  JsonObject o;
  o["curve"] = JsonArray{Json(JsonArray{Json(0.5), Json(1), Json(0.25)})};
  o["name"] = "arm one";
  o["n"] = 17;
  const std::string dumped = Json(o).dump();
  EXPECT_EQ(Json::parse(dumped).dump(), dumped);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(Json::parse("nul"), Error);
}

TEST(JsonTest, TypedAccessorsCheckTypes) {
  EXPECT_THROW(Json("str").as_double(), Error);
  EXPECT_THROW(Json(1.5).as_string(), Error);
  EXPECT_THROW(Json(1.5).as_u64(), Error);   // non-integral
  EXPECT_THROW(Json(-1).as_u64(), Error);    // negative
  EXPECT_EQ(Json(7).as_u64(), 7u);
  EXPECT_THROW(Json(1).at("k"), Error);      // not an object
  EXPECT_THROW(Json(JsonObject{}).at("k"), Error);  // absent key
}

}  // namespace
}  // namespace seafl::exp
