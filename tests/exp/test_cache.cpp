#include "exp/cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "exp/spec.h"

namespace seafl::exp {
namespace {

namespace fs = std::filesystem;

/// A RunResult with every persisted field set to a distinctive value.
RunResult sample_result() {
  RunResult r;
  r.curve = {{0.0, 0, 0.1, 2.3}, {12.5, 1, 0.42, 1.7}, {30.25, 2, 0.61, 1.1}};
  r.round_log = {{1, 12.5, 5, 0.4, 1}, {2, 30.25, 5, 1.2, 0}};
  r.participation = {3, 0, 2, 1};
  r.time_to_target = 30.25;
  r.final_accuracy = 0.61;
  r.final_time = 30.25;
  r.rounds = 2;
  r.total_updates = 10;
  r.partial_updates = 1;
  r.model_downloads = 11;
  r.model_uploads = 10;
  r.notifications = 4;
  r.lost_uploads = 2;
  r.aggregations = 2;
  r.server_aggregation_work = 12345.5;
  r.dropped_updates = 1;
  r.stale_waits = 3;
  r.mean_staleness = 0.8;
  r.client_crashes = 4;
  r.deadline_expirations = 3;
  r.redispatches = 2;
  r.abandoned_slots = 1;
  r.upload_retries = 5;
  r.degraded_aggregations = 1;
  r.screened_updates = 2;
  r.clipped_updates = 6;
  r.speculation_cut = 7;
  r.speculation_wasted = 3;
  return r;
}

void expect_equal(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].time, b.curve[i].time);
    EXPECT_EQ(a.curve[i].round, b.curve[i].round);
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy);
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss);
  }
  ASSERT_EQ(a.round_log.size(), b.round_log.size());
  for (std::size_t i = 0; i < a.round_log.size(); ++i) {
    EXPECT_EQ(a.round_log[i].round, b.round_log[i].round);
    EXPECT_EQ(a.round_log[i].time, b.round_log[i].time);
    EXPECT_EQ(a.round_log[i].updates, b.round_log[i].updates);
    EXPECT_EQ(a.round_log[i].mean_staleness, b.round_log[i].mean_staleness);
    EXPECT_EQ(a.round_log[i].partial, b.round_log[i].partial);
  }
  EXPECT_EQ(a.participation, b.participation);
  EXPECT_EQ(a.time_to_target, b.time_to_target);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_EQ(a.partial_updates, b.partial_updates);
  EXPECT_EQ(a.model_downloads, b.model_downloads);
  EXPECT_EQ(a.model_uploads, b.model_uploads);
  EXPECT_EQ(a.notifications, b.notifications);
  EXPECT_EQ(a.lost_uploads, b.lost_uploads);
  EXPECT_EQ(a.aggregations, b.aggregations);
  EXPECT_EQ(a.server_aggregation_work, b.server_aggregation_work);
  EXPECT_EQ(a.dropped_updates, b.dropped_updates);
  EXPECT_EQ(a.stale_waits, b.stale_waits);
  EXPECT_EQ(a.mean_staleness, b.mean_staleness);
  EXPECT_EQ(a.client_crashes, b.client_crashes);
  EXPECT_EQ(a.deadline_expirations, b.deadline_expirations);
  EXPECT_EQ(a.redispatches, b.redispatches);
  EXPECT_EQ(a.abandoned_slots, b.abandoned_slots);
  EXPECT_EQ(a.upload_retries, b.upload_retries);
  EXPECT_EQ(a.degraded_aggregations, b.degraded_aggregations);
  EXPECT_EQ(a.screened_updates, b.screened_updates);
  EXPECT_EQ(a.clipped_updates, b.clipped_updates);
  EXPECT_EQ(a.speculation_cut, b.speculation_cut);
  EXPECT_EQ(a.speculation_wasted, b.speculation_wasted);
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("seafl_cache_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(CacheTest, ResultJsonRoundTrip) {
  const RunResult original = sample_result();
  const Json doc = result_to_json(original);
  const RunResult restored = result_from_json(Json::parse(doc.dump()));
  expect_equal(original, restored);
}

TEST_F(CacheTest, MissOnEmptyCacheThenHitAfterStore) {
  ResultCache cache(dir_.string());
  ArmSpec spec;
  const std::string hash = config_hash(spec);
  const std::string canonical = canonical_config(spec);

  EXPECT_FALSE(cache.load(hash, canonical).has_value());

  cache.store(hash, canonical, sample_result());
  const auto hit = cache.load(hash, canonical);
  ASSERT_TRUE(hit.has_value());
  expect_equal(sample_result(), *hit);
}

TEST_F(CacheTest, MismatchedConfigEchoIsAMiss) {
  ResultCache cache(dir_.string());
  ArmSpec spec;
  const std::string hash = config_hash(spec);
  cache.store(hash, canonical_config(spec), sample_result());

  // Same hash key, different canonical config (simulated collision or a
  // schema drift): the cache must refuse, not return a wrong result.
  ArmSpec other = spec;
  apply_override(other, "buffer", "3");
  EXPECT_FALSE(cache.load(hash, canonical_config(other)).has_value());
}

TEST_F(CacheTest, CorruptEntryIsAMissNotAnError) {
  ResultCache cache(dir_.string());
  ArmSpec spec;
  const std::string hash = config_hash(spec);
  const std::string canonical = canonical_config(spec);
  cache.store(hash, canonical, sample_result());

  std::ofstream(cache.path_for(hash), std::ios::trunc) << "{not json";
  EXPECT_FALSE(cache.load(hash, canonical).has_value());
}

TEST_F(CacheTest, StoreIsIdempotentAndFilesLandUnderDir) {
  ResultCache cache(dir_.string());
  ArmSpec spec;
  const std::string hash = config_hash(spec);
  const std::string canonical = canonical_config(spec);
  cache.store(hash, canonical, sample_result());
  cache.store(hash, canonical, sample_result());
  EXPECT_TRUE(fs::exists(cache.path_for(hash)));
  // No stray temp files left behind.
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    ++entries;
    EXPECT_EQ(e.path().extension(), ".json");
  }
  EXPECT_EQ(entries, 1u);
}

}  // namespace
}  // namespace seafl::exp
