// End-to-end kernel-backend equivalence: a full semi-asynchronous FL
// simulation must produce the same RunResult — accuracy curve, event
// accounting, and final weights bitwise — whether the GEMM layer runs the
// retained reference kernel or the packed/tiled kernel, on any target where
// the compiler does not contract mul+add into FMA (the determinism contract
// of DESIGN.md §11). Also pins down that a run is repeatable under each
// backend individually, which holds on every target.
#include <gtest/gtest.h>

#include "core/presets.h"
#include "data/registry.h"
#include "sim/fleet.h"
#include "tensor/gemm.h"
#include "tensor/workspace.h"

namespace seafl {
namespace {

struct Fixture {
  FlTask task;
  Fleet fleet;

  Fixture()
      : task(make_task([] {
          TaskSpec spec;
          spec.name = "synth-mnist";
          spec.num_clients = 10;
          spec.samples_per_client = 12;
          spec.test_samples = 50;
          return spec;
        }())),
        fleet([] {
          FleetConfig fc;
          fc.num_devices = 10;
          fc.pareto_shape = 1.4;
          fc.seed = 11;
          return fc;
        }()) {}

  ExperimentParams params() const {
    ExperimentParams p;
    p.buffer_size = 3;
    p.concurrency = 5;
    p.staleness_limit = 2;
    p.local_epochs = 1;
    p.batch_size = 8;
    p.max_rounds = 6;
    p.stop_at_target = false;
    p.seed = 42;
    return p;
  }
};

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].time, b.curve[i].time);
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy);
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss);
  }
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_EQ(a.model_uploads, b.model_uploads);
  EXPECT_EQ(a.mean_staleness, b.mean_staleness);
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size());
  for (std::size_t i = 0; i < a.final_weights.size(); ++i)
    EXPECT_EQ(a.final_weights[i], b.final_weights[i]);  // bitwise
}

RunResult run_with(GemmBackend backend, const Fixture& f) {
  GemmBackendScope scope(backend);
  return run_arm("seafl2", f.params(), f.task, f.fleet, nullptr);
}

TEST(KernelBackendTest, EachBackendIsRepeatable) {
  Fixture f;
  expect_identical(run_with(GemmBackend::kReference, f),
                   run_with(GemmBackend::kReference, f));
  expect_identical(run_with(GemmBackend::kTiled, f),
                   run_with(GemmBackend::kTiled, f));
}

#if !defined(__FMA__)
TEST(KernelBackendTest, TiledMatchesReferenceBitwise) {
  Fixture f;
  expect_identical(run_with(GemmBackend::kReference, f),
                   run_with(GemmBackend::kTiled, f));
}
#else
// Under -march=native with FMA the backends may legitimately differ by
// final-rounding ULPs per the determinism contract; the exact cross-backend
// comparison is not claimed there.
#endif

TEST(KernelBackendTest, ArenaDisabledDoesNotChangeResults) {
  // The workspace arena is a pure memory-reuse optimization: "before"
  // (fresh allocations) and "after" (reused buffers) must agree bitwise.
  Fixture f;
  const RunResult with_arena = run_with(GemmBackend::kTiled, f);
  Workspace::set_enabled(false);
  const RunResult without_arena = run_with(GemmBackend::kTiled, f);
  Workspace::set_enabled(true);
  expect_identical(with_arena, without_arena);
}

}  // namespace
}  // namespace seafl
