// Protocol invariants checked on full runs: properties Algorithm 1/2 and
// the simulation loop must maintain regardless of strategy or world.
#include <gtest/gtest.h>

#include "core/seafl.h"

namespace seafl {
namespace {

struct World {
  FlTask task;
  Fleet fleet;
};

World make_world(double pareto_shape, std::uint64_t seed = 11) {
  TaskSpec spec;
  spec.name = "synth-mnist";
  spec.num_clients = 24;
  spec.samples_per_client = 12;
  spec.test_samples = 60;
  spec.seed = seed;
  FleetConfig fc;
  fc.num_devices = spec.num_clients;
  fc.pareto_shape = pareto_shape;
  fc.seed = seed;
  return World{make_task(spec), Fleet(fc)};
}

RunConfig small_config() {
  RunConfig c;
  c.buffer_size = 4;
  c.concurrency = 8;
  c.local_epochs = 2;
  c.batch_size = 6;
  c.sgd.learning_rate = 0.05f;
  c.max_rounds = 10;
  c.target_accuracy = 2.0;  // unreachable: run the full budget
  c.stop_at_target = false;
  c.eval_subset = 30;
  return c;
}

RunResult run_config(const World& w, StrategyPtr strategy,
                     const RunConfig& c) {
  const ModelFactory factory =
      make_model(w.task.default_model, w.task.input, w.task.num_classes);
  Simulation sim(w.task, factory, w.fleet, std::move(strategy), c);
  return sim.run();
}

TEST(ProtocolInvariants, SemiAsyncWithoutWaitingConsumesExactlyK) {
  const World w = make_world(1.3);
  const RunConfig c = small_config();
  const auto r = run_config(w, std::make_unique<FedBuffStrategy>(), c);
  for (const auto& s : r.round_log) EXPECT_EQ(s.updates, c.buffer_size);
}

TEST(ProtocolInvariants, WaitingBoundsEveryAggregatedStaleness) {
  const World w = make_world(1.05);
  RunConfig c = small_config();
  c.staleness_limit = 2;
  c.wait_for_stale = true;
  c.max_rounds = 15;
  SeaflConfig sc;
  sc.weights.staleness_limit = 2;
  sc.full_epochs = c.local_epochs;
  const auto r = run_config(w, std::make_unique<SeaflStrategy>(sc), c);
  for (const auto& s : r.round_log)
    EXPECT_LE(s.mean_staleness, 2.0 + 1e-9) << "round " << s.round;
}

TEST(ProtocolInvariants, WaitingMayConsumeMoreThanK) {
  // While the server holds aggregation for a stale device, further arrivals
  // keep buffering; the eventual aggregation uses all of them.
  const World w = make_world(1.05);
  RunConfig c = small_config();
  c.staleness_limit = 1;
  c.wait_for_stale = true;
  c.max_rounds = 15;
  SeaflConfig sc;
  sc.weights.staleness_limit = 1;
  sc.full_epochs = c.local_epochs;
  const auto r = run_config(w, std::make_unique<SeaflStrategy>(sc), c);
  bool any_over = false;
  for (const auto& s : r.round_log) any_over |= s.updates > c.buffer_size;
  EXPECT_TRUE(any_over);
}

TEST(ProtocolInvariants, SyncConsumesWholeCohortAtZeroStaleness) {
  const World w = make_world(1.2);
  RunConfig c = small_config();
  c.mode = FlMode::kSync;
  const auto r = run_config(w, std::make_unique<FedAvgStrategy>(), c);
  for (const auto& s : r.round_log) {
    EXPECT_EQ(s.updates, c.concurrency);
    EXPECT_DOUBLE_EQ(s.mean_staleness, 0.0);
  }
}

TEST(ProtocolInvariants, FullyAsyncOneUpdatePerRound) {
  const World w = make_world(1.2);
  RunConfig c = small_config();
  c.buffer_size = 1;
  const auto r = run_config(w, std::make_unique<FedAsyncStrategy>(), c);
  EXPECT_EQ(r.total_updates, r.rounds);
  for (const auto& s : r.round_log) EXPECT_EQ(s.updates, 1u);
}

TEST(ProtocolInvariants, PartialUpdatesOnlyWithNotificationsOrAdaptation) {
  // Plain runs never produce partially trained uploads.
  const World w = make_world(1.05);
  const auto r = run_config(w, std::make_unique<FedBuffStrategy>(),
                            small_config());
  EXPECT_EQ(r.partial_updates, 0u);
  for (const auto& s : r.round_log) EXPECT_EQ(s.partial, 0u);
}

TEST(ProtocolInvariants, Seafl2StalenessStaysNearBeta) {
  // Non-blocking SEAFL^2 cannot hard-bound staleness, but notifications
  // keep it close to beta: no aggregated update should be grossly over.
  const World w = make_world(1.05);
  RunConfig c = small_config();
  c.staleness_limit = 2;
  c.partial_training = true;
  c.max_rounds = 20;
  SeaflConfig sc;
  sc.weights.staleness_limit = 2;
  sc.full_epochs = c.local_epochs;
  const auto r = run_config(w, std::make_unique<SeaflStrategy>(sc), c);
  // The notified device needs at most one more epoch + upload, during which
  // only a few rounds can pass in this small world.
  for (const auto& s : r.round_log)
    EXPECT_LE(s.mean_staleness, 8.0) << "round " << s.round;
  EXPECT_GT(r.partial_updates, 0u);
}

TEST(ProtocolInvariants, VirtualTimeNeverDecreases) {
  const World w = make_world(1.1);
  for (const char* algo : {"seafl", "seafl2", "fedbuff", "fedavg"}) {
    ExperimentParams params;
    params.buffer_size = 4;
    params.concurrency = 8;
    params.local_epochs = 2;
    params.max_rounds = 8;
    params.stop_at_target = false;
    params.eval_subset = 30;
    const auto r = run_arm(algo, params, w.task, w.fleet);
    double prev = -1.0;
    for (const auto& s : r.round_log) {
      EXPECT_GE(s.time, prev) << algo;
      prev = s.time;
    }
  }
}

TEST(ProtocolInvariants, TotalUpdatesEqualsRoundLogSum) {
  const World w = make_world(1.1);
  RunConfig c = small_config();
  c.staleness_limit = 1;
  c.wait_for_stale = true;
  SeaflConfig sc;
  sc.weights.staleness_limit = 1;
  sc.full_epochs = c.local_epochs;
  const auto r = run_config(w, std::make_unique<SeaflStrategy>(sc), c);
  std::size_t sum = 0;
  for (const auto& s : r.round_log) sum += s.updates;
  EXPECT_EQ(sum, r.total_updates);
}

}  // namespace
}  // namespace seafl
