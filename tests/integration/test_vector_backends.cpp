// End-to-end vector-backend equivalence: a full semi-asynchronous FL
// simulation must produce the same RunResult — accuracy curve, event
// accounting, and final weights bitwise — whether the span kernels run the
// portable scalar table or the AVX2 table, on any target where the compiler
// does not contract mul+add into FMA (the lane-strided reduction contract
// of DESIGN.md §17). Arms cover the paths the SIMD work touched: adaptive
// aggregation (seafl/seafl2), screening (seafl-ft), the q8 codec fast path
// (int8), and top-k with error feedback.
#include <gtest/gtest.h>

#include "core/presets.h"
#include "data/registry.h"
#include "sim/fleet.h"
#include "tensor/ops.h"

namespace seafl {
namespace {

struct Fixture {
  FlTask task;
  Fleet fleet;

  Fixture()
      : task(make_task([] {
          TaskSpec spec;
          spec.name = "synth-mnist";
          spec.num_clients = 10;
          spec.samples_per_client = 12;
          spec.test_samples = 50;
          return spec;
        }())),
        fleet([] {
          FleetConfig fc;
          fc.num_devices = 10;
          fc.pareto_shape = 1.4;
          fc.seed = 11;
          return fc;
        }()) {}

  ExperimentParams params() const {
    ExperimentParams p;
    p.buffer_size = 3;
    p.concurrency = 5;
    p.staleness_limit = 2;
    p.local_epochs = 1;
    p.batch_size = 8;
    p.max_rounds = 6;
    p.stop_at_target = false;
    p.seed = 42;
    return p;
  }
};

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].time, b.curve[i].time);
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy);
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss);
  }
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_EQ(a.model_uploads, b.model_uploads);
  EXPECT_EQ(a.mean_staleness, b.mean_staleness);
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size());
  for (std::size_t i = 0; i < a.final_weights.size(); ++i)
    EXPECT_EQ(a.final_weights[i], b.final_weights[i]);  // bitwise
}

RunResult run_with(VectorBackend backend, const std::string& algorithm,
                   const ExperimentParams& params, const Fixture& f) {
  VectorBackendScope scope(backend);
  return run_arm(algorithm, params, f.task, f.fleet, nullptr);
}

TEST(VectorBackendE2ETest, EachBackendIsRepeatable) {
  Fixture f;
  const ExperimentParams p = f.params();
  expect_identical(run_with(VectorBackend::kScalar, "seafl2", p, f),
                   run_with(VectorBackend::kScalar, "seafl2", p, f));
  expect_identical(run_with(VectorBackend::kSimd, "seafl2", p, f),
                   run_with(VectorBackend::kSimd, "seafl2", p, f));
}

#if !defined(__FMA__)

TEST(VectorBackendE2ETest, SeaflMatchesBitwise) {
  Fixture f;
  expect_identical(run_with(VectorBackend::kScalar, "seafl", f.params(), f),
                   run_with(VectorBackend::kSimd, "seafl", f.params(), f));
}

TEST(VectorBackendE2ETest, Seafl2MatchesBitwise) {
  Fixture f;
  expect_identical(run_with(VectorBackend::kScalar, "seafl2", f.params(), f),
                   run_with(VectorBackend::kSimd, "seafl2", f.params(), f));
}

TEST(VectorBackendE2ETest, ScreeningArmMatchesBitwise) {
  // seafl-ft wires pre-aggregation screening (screen_updates_into) into the
  // round, so this exercises the arena-staged delta/norm/mean kernels.
  Fixture f;
  expect_identical(run_with(VectorBackend::kScalar, "seafl-ft", f.params(), f),
                   run_with(VectorBackend::kSimd, "seafl-ft", f.params(), f));
}

TEST(VectorBackendE2ETest, Int8CodecArmMatchesBitwise) {
  // int8 quantization hits the q8 encode/decode fast path on every upload.
  Fixture f;
  ExperimentParams p = f.params();
  p.codec = "int8";
  expect_identical(run_with(VectorBackend::kScalar, "seafl2", p, f),
                   run_with(VectorBackend::kSimd, "seafl2", p, f));
}

TEST(VectorBackendE2ETest, TopKErrorFeedbackArmMatchesBitwise) {
  Fixture f;
  ExperimentParams p = f.params();
  p.codec = "topk";
  p.topk_fraction = 0.25;
  p.error_feedback = true;
  expect_identical(run_with(VectorBackend::kScalar, "seafl2", p, f),
                   run_with(VectorBackend::kSimd, "seafl2", p, f));
}

#else
// Under -march=native with FMA the scalar table's mul+add chains may be
// contracted, so the exact cross-backend comparison is not claimed there
// (same carve-out as the GEMM backends in test_kernel_backends.cpp).
#endif

}  // namespace
}  // namespace seafl
