// Cross-module integration tests: full federated runs through the public
// API, checking the qualitative properties the paper's evaluation relies on.
#include <gtest/gtest.h>

#include "core/seafl.h"

namespace seafl {
namespace {

struct World {
  FlTask task;
  Fleet fleet;

  explicit World(std::size_t clients = 30, std::size_t samples = 30,
                 double pareto_shape = 1.3)
      : task(make_task([&] {
          TaskSpec spec;
          spec.name = "synth-mnist";
          spec.num_clients = clients;
          spec.samples_per_client = samples;
          spec.test_samples = 150;
          return spec;
        }())),
        fleet([&] {
          FleetConfig fc;
          fc.num_devices = clients;
          fc.pareto_shape = pareto_shape;
          fc.seed = 17;
          return Fleet(fc);
        }()) {}
};

ExperimentParams fast_params() {
  ExperimentParams p;
  p.buffer_size = 5;
  p.concurrency = 10;
  p.local_epochs = 2;
  p.target_accuracy = 0.85;
  p.max_rounds = 120;
  p.eval_subset = 150;
  return p;
}

TEST(EndToEndTest, SeaflReachesTarget) {
  World world;
  const auto r = run_arm("seafl", fast_params(), world.task, world.fleet);
  EXPECT_GE(r.time_to_target, 0.0) << "final acc " << r.final_accuracy;
}

TEST(EndToEndTest, SeaflBeatsFedAvgWallClock) {
  // The paper's headline qualitative result (Fig. 5): semi-async SEAFL
  // reaches the target in less virtual wall-clock time than synchronous
  // FedAvg under heterogeneous device speeds.
  World world;
  const auto params = fast_params();
  const auto seafl = run_arm("seafl", params, world.task, world.fleet);
  const auto fedavg = run_arm("fedavg", params, world.task, world.fleet);
  ASSERT_GE(seafl.time_to_target, 0.0);
  // FedAvg either fails to reach the target in the round budget or takes
  // longer than SEAFL.
  if (fedavg.time_to_target >= 0.0) {
    EXPECT_LT(seafl.time_to_target, fedavg.time_to_target);
  }
}

TEST(EndToEndTest, RunsAreReproducibleAcrossProcessesInPrinciple) {
  // Same seed, same arms, bit-identical curves (determinism guarantee).
  World world;
  const auto params = fast_params();
  const auto a = run_arm("seafl2", params, world.task, world.fleet);
  const auto b = run_arm("seafl2", params, world.task, world.fleet);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.curve[i].accuracy, b.curve[i].accuracy);
    ASSERT_DOUBLE_EQ(a.curve[i].time, b.curve[i].time);
  }
}

TEST(EndToEndTest, DifferentSeedsGiveDifferentTrajectories) {
  World world;
  auto params = fast_params();
  const auto a = run_arm("seafl", params, world.task, world.fleet);
  params.seed = 777;
  const auto b = run_arm("seafl", params, world.task, world.fleet);
  bool any_diff = a.curve.size() != b.curve.size();
  for (std::size_t i = 0; !any_diff && i < a.curve.size(); ++i)
    any_diff |= a.curve[i].accuracy != b.curve[i].accuracy;
  EXPECT_TRUE(any_diff);
}

TEST(EndToEndTest, StalenessLimitKeepsMeanStalenessLower) {
  // SEAFL's waiting protocol with a tight limit must yield lower mean
  // staleness than the unlimited variant on a heavy-tailed fleet.
  World world(/*clients=*/30, /*samples=*/30, /*pareto_shape=*/1.05);
  auto params = fast_params();
  params.stop_at_target = false;
  params.max_rounds = 25;
  params.staleness_limit = 2;
  const auto limited = run_arm("seafl", params, world.task, world.fleet);
  const auto unlimited = run_arm("seafl-inf", params, world.task, world.fleet);
  EXPECT_LE(limited.mean_staleness, unlimited.mean_staleness + 1e-9);
  EXPECT_LE(limited.mean_staleness, 2.0 + 1e-9);
}

TEST(EndToEndTest, EveryPresetAlgorithmCompletesARun) {
  World world;
  auto params = fast_params();
  params.max_rounds = 8;
  params.stop_at_target = false;
  for (const auto& algo : known_algorithms()) {
    const auto r = run_arm(algo, params, world.task, world.fleet);
    EXPECT_EQ(r.rounds, 8u) << algo;
    EXPECT_FALSE(r.curve.empty()) << algo;
    EXPECT_GT(r.final_time, 0.0) << algo;
  }
}

TEST(EndToEndTest, ConvTaskTrainsEndToEnd) {
  // A small patterned-image task through the lenet_lite path exercises
  // conv/pool layers inside the full simulation stack.
  TaskSpec spec;
  spec.name = "synth-emnist";
  spec.num_clients = 8;
  spec.samples_per_client = 12;
  spec.test_samples = 60;
  const FlTask task = make_task(spec);
  FleetConfig fc;
  fc.num_devices = 8;
  const Fleet fleet(fc);

  ExperimentParams params;
  params.buffer_size = 2;
  params.concurrency = 4;
  params.local_epochs = 1;
  params.max_rounds = 10;
  params.stop_at_target = false;
  params.eval_subset = 60;
  const auto r = run_arm("seafl", params, task, fleet);
  EXPECT_EQ(r.rounds, 10u);
  // Accuracy should move above chance with 10 classes.
  EXPECT_GT(r.final_accuracy, 0.15);
}

TEST(EndToEndTest, TheoryHooksAcceptDefaultHyperparameters) {
  // The default experiment parameters satisfy Eq. 10 for a plausible
  // smoothness constant, tying the theory module to the presets.
  World world;
  std::vector<double> fractions;
  double total = 0.0;
  const Partition lists = materialize(*world.task.partition);
  for (const auto& idx : lists) total += idx.size();
  for (const auto& idx : lists)
    fractions.push_back(idx.size() / total);
  const double lambda = lambda_d(fractions);
  const ExperimentParams params;
  const double eta_max = max_stable_learning_rate(
      params.alpha, params.mu, lambda, params.buffer_size, /*L=*/1.0);
  EXPECT_GT(eta_max, 0.0);
}

}  // namespace
}  // namespace seafl
