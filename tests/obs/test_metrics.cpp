#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"

namespace seafl::obs {
namespace {

TEST(CounterTest, AddsAndTotals) {
  Registry r;
  Counter& c = r.counter("events");
  c.add();
  c.add(41);
  EXPECT_EQ(c.total(), 42u);
  EXPECT_EQ(c.thread_total(), 42u);
  EXPECT_EQ(&r.counter("events"), &c);  // interned by name
}

TEST(CounterTest, ConcurrentIncrementsMergeExactly) {
  Registry r;
  Counter& c = r.counter("hits");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.total(), kThreads * kPerThread);
  // This thread never incremented, so its shard is empty.
  EXPECT_EQ(c.thread_total(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Registry r;
  Gauge& g = r.gauge("queue_depth");
  g.set(3.0);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.5);
}

TEST(HistogramTest, BucketsAreUpperInclusive) {
  Registry r;
  Histogram& h = r.histogram("latency", {1.0, 2.0, 4.0});
  // bucket i counts bounds[i-1] < v <= bounds[i]; the last is +inf overflow.
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (boundary is inclusive)
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // bucket 3 (overflow)
  const HistogramData data = h.snapshot();
  ASSERT_EQ(data.counts.size(), 4u);
  EXPECT_EQ(data.counts[0], 2u);
  EXPECT_EQ(data.counts[1], 1u);
  EXPECT_EQ(data.counts[2], 1u);
  EXPECT_EQ(data.counts[3], 1u);
  EXPECT_EQ(data.total_count(), 5u);
  EXPECT_DOUBLE_EQ(data.sum, 107.0);
  EXPECT_DOUBLE_EQ(data.mean(), 107.0 / 5.0);
}

TEST(HistogramTest, ConcurrentObservationsMergeExactly) {
  Registry r;
  Histogram& h = r.histogram("work", {10.0, 100.0});
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(1.0);
    });
  }
  for (auto& t : threads) t.join();
  const HistogramData data = h.snapshot();
  EXPECT_EQ(data.total_count(), kThreads * kPerThread);
  EXPECT_EQ(data.counts[0], kThreads * kPerThread);
  // Sums of 1.0 stay exact in a double far beyond this count.
  EXPECT_DOUBLE_EQ(data.sum, static_cast<double>(kThreads * kPerThread));
}

TEST(HistogramTest, ThreadSnapshotIsolatesCallingThread) {
  Registry r;
  Histogram& h = r.histogram("per_thread", {1.0});
  h.observe(0.5);
  std::thread other([&h] {
    for (int i = 0; i < 10; ++i) h.observe(0.5);
  });
  other.join();
  EXPECT_EQ(h.thread_snapshot().total_count(), 1u);
  EXPECT_EQ(h.snapshot().total_count(), 11u);
}

TEST(HistogramTest, RejectsBadBounds) {
  Registry r;
  EXPECT_THROW(r.histogram("unsorted", {2.0, 1.0}), Error);
  EXPECT_THROW(r.histogram("dupes", {1.0, 1.0}), Error);
  r.histogram("ok", {1.0, 2.0});
  // Re-registration must agree on buckets (or leave them unspecified).
  EXPECT_THROW(r.histogram("ok", {1.0, 3.0}), Error);
  EXPECT_NO_THROW(r.histogram("ok", {1.0, 2.0}));
  EXPECT_NO_THROW(r.histogram("ok"));
}

TEST(HistogramTest, DefaultTimeBucketsAreDoublingMicroseconds) {
  const std::vector<double> bounds = default_time_buckets();
  ASSERT_EQ(bounds.size(), 28u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_DOUBLE_EQ(bounds[i], 2.0 * bounds[i - 1]);
  Registry r;
  EXPECT_EQ(r.histogram("t").bounds(), bounds);
}

TEST(SnapshotTest, DeltaSubtractsPerMetric) {
  Registry r;
  Counter& c = r.counter("calls");
  Histogram& h = r.histogram("secs", {1.0});
  Gauge& g = r.gauge("level");
  c.add(5);
  h.observe(0.5);
  g.set(1.0);
  const Snapshot before = r.snapshot();
  c.add(7);
  h.observe(0.5);
  h.observe(2.0);
  g.set(9.0);
  const Snapshot after = r.snapshot();
  const Snapshot d = Snapshot::delta(before, after);
  EXPECT_EQ(d.counters.at("calls"), 7u);
  EXPECT_EQ(d.histograms.at("secs").counts[0], 1u);
  EXPECT_EQ(d.histograms.at("secs").counts[1], 1u);
  EXPECT_DOUBLE_EQ(d.histograms.at("secs").sum, 2.5);
  // Gauges are point-in-time: delta carries the `after` value.
  EXPECT_DOUBLE_EQ(d.gauges.at("level"), 9.0);
}

TEST(SnapshotTest, MetricsAbsentFromBeforeCountFromZero) {
  Snapshot before;
  Snapshot after;
  after.counters["new"] = 3;
  const Snapshot d = Snapshot::delta(before, after);
  EXPECT_EQ(d.counters.at("new"), 3u);
}

TEST(SnapshotTest, ToJsonRoundTripsThroughParser) {
  Registry r;
  r.counter("a.calls").add(2);
  r.histogram("a.seconds", {1.0, 2.0}).observe(1.5);
  r.gauge("depth").set(4.0);
  const Json doc = Json::parse(r.snapshot().to_json().dump());
  EXPECT_EQ(doc.at("counters").at("a.calls").as_u64(), 2u);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("depth").as_double(), 4.0);
  const Json& h = doc.at("histograms").at("a.seconds");
  EXPECT_EQ(h.at("bounds").as_array().size(), 2u);
  EXPECT_EQ(h.at("counts").as_array().size(), 3u);
  EXPECT_EQ(h.at("count").as_u64(), 1u);
  EXPECT_DOUBLE_EQ(h.at("sum").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(h.at("mean").as_double(), 1.5);
}

TEST(RegistryTest, ResetZeroesEverythingButKeepsMetrics) {
  Registry r;
  Counter& c = r.counter("n");
  Histogram& h = r.histogram("h", {1.0});
  r.gauge("g").set(2.0);
  c.add(10);
  h.observe(0.5);
  r.reset();
  EXPECT_EQ(c.total(), 0u);
  EXPECT_EQ(h.snapshot().total_count(), 0u);
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 0.0);
  EXPECT_EQ(&r.counter("n"), &c);
  c.add(1);  // cells survive reset; no re-registration needed
  EXPECT_EQ(c.total(), 1u);
}

TEST(RegistryTest, GlobalIsStable) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace seafl::obs
