#include <gtest/gtest.h>

#include <vector>

#include "obs/profile.h"
#include "tensor/gemm.h"

namespace seafl::obs {
namespace {

// ProfSite metrics live in the global registry; measure by delta so tests
// stay order-independent.
std::uint64_t calls(const char* name) {
  return Registry::global().counter(std::string(name) + ".calls").total();
}

void probed_function() { SEAFL_PROF_SCOPE("obs_test.probe"); }

TEST(ProfileTest, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(profiling_enabled());
  const std::uint64_t before = calls("obs_test.probe");
  probed_function();
  probed_function();
  EXPECT_EQ(calls("obs_test.probe"), before);
}

TEST(ProfileTest, EnabledScopeRecordsCallsAndSeconds) {
  const std::uint64_t before = calls("obs_test.probe");
  const std::uint64_t secs_before = Registry::global()
                                        .histogram("obs_test.probe.seconds")
                                        .snapshot()
                                        .total_count();
  {
    ProfilingScope scope;
    probed_function();
    probed_function();
    probed_function();
  }
  EXPECT_EQ(calls("obs_test.probe"), before + 3);
  const HistogramData h =
      Registry::global().histogram("obs_test.probe.seconds").snapshot();
  EXPECT_EQ(h.total_count(), secs_before + 3);
  EXPECT_GE(h.sum, 0.0);
  // Back outside the scope: disabled again, no further records.
  probed_function();
  EXPECT_EQ(calls("obs_test.probe"), before + 3);
}

TEST(ProfileTest, ScopesNestAndRestore) {
  ProfilingScope outer;
  EXPECT_TRUE(profiling_enabled());
  {
    ProfilingScope inner(false);
    EXPECT_FALSE(profiling_enabled());
  }
  EXPECT_TRUE(profiling_enabled());
}

TEST(ProfileTest, SameNameSharesOneSite) {
  EXPECT_EQ(&ProfSite::get("obs_test.shared"),
            &ProfSite::get("obs_test.shared"));
}

TEST(ProfileTest, BuiltInKernelSitesExistAfterUse) {
  // The instrumented kernels register their sites on first execution; the
  // names below are the stable probe vocabulary other tooling keys on.
  ProfSite::get("tensor.gemm");
  ProfSite::get("fl.client_train");
  ProfSite::get("fl.aggregate");
  ProfSite::get("fl.evaluate");
  const Snapshot snap = Registry::global().snapshot();
  EXPECT_TRUE(snap.counters.count("tensor.gemm.calls"));
  EXPECT_TRUE(snap.histograms.count("fl.client_train.seconds"));
  EXPECT_TRUE(snap.histograms.count("fl.aggregate.seconds"));
  EXPECT_TRUE(snap.histograms.count("fl.evaluate.seconds"));
}

TEST(ProfileTest, TiledGemmRecordsPackAndMicrokernelScopes) {
  const std::uint64_t gemm_before = calls("tensor.gemm");
  const std::uint64_t pack_before = calls("tensor.pack");
  const std::uint64_t micro_before = calls("tensor.microkernel");
  {
    ProfilingScope scope;
    GemmBackendScope backend(GemmBackend::kTiled);
    const std::size_t m = 12, n = 20, k = 9;
    std::vector<float> a(m * k, 0.5f), b(k * n, 0.25f), c(m * n, 0.0f);
    gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f, c);
  }
  EXPECT_EQ(calls("tensor.gemm"), gemm_before + 1);
  // pack: one B pack + one A pack per row panel (3 panels of 4 rows).
  EXPECT_EQ(calls("tensor.pack"), pack_before + 4);
  // microkernel: one scope per row panel.
  EXPECT_EQ(calls("tensor.microkernel"), micro_before + 3);
}

}  // namespace
}  // namespace seafl::obs
