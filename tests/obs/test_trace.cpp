#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/trace.h"

namespace seafl::obs {
namespace {

TraceEvent make(TraceEventKind kind, double time, std::size_t client) {
  TraceEvent e;
  e.kind = kind;
  e.time = time;
  e.client = client;
  return e;
}

/// A minimal but complete client session: assigned -> epochs -> upload,
/// then a server aggregate + eval.
TraceJournal example_journal() {
  TraceJournal j;
  TraceEvent assigned = make(TraceEventKind::kAssigned, 0.0, 3);
  assigned.round = 0;
  assigned.base_round = 0;
  assigned.epochs = 2;
  j.record(assigned);

  TraceEvent epoch = make(TraceEventKind::kEpochDone, 1.5, 3);
  epoch.epochs = 1;
  j.record(epoch);
  epoch.time = 3.0;
  epoch.epochs = 2;
  j.record(epoch);

  TraceEvent upload = make(TraceEventKind::kUpload, 3.25, 3);
  upload.round = 1;
  upload.base_round = 0;
  upload.epochs = 2;
  upload.value = 1.0;  // staleness
  j.record(upload);

  TraceEvent agg = make(TraceEventKind::kAggregate, 3.25, kServerTrack);
  agg.round = 2;
  agg.updates = 3;
  agg.value = 0.5;
  j.record(agg);

  TraceEvent eval = make(TraceEventKind::kEval, 3.25, kServerTrack);
  eval.round = 2;
  eval.value = 0.75;
  j.record(eval);
  return j;
}

TEST(TraceTest, EventNamesAreStable) {
  EXPECT_STREQ(trace_event_name(TraceEventKind::kAssigned), "assigned");
  EXPECT_STREQ(trace_event_name(TraceEventKind::kEpochDone), "epoch_done");
  EXPECT_STREQ(trace_event_name(TraceEventKind::kNotified), "notified");
  EXPECT_STREQ(trace_event_name(TraceEventKind::kUpload), "upload");
  EXPECT_STREQ(trace_event_name(TraceEventKind::kUploadLost), "upload_lost");
  EXPECT_STREQ(trace_event_name(TraceEventKind::kAggregate), "aggregate");
  EXPECT_STREQ(trace_event_name(TraceEventKind::kEval), "eval");
}

TEST(TraceTest, EventJsonHasUniformSchema) {
  const TraceJournal j = example_journal();
  for (const TraceEvent& e : j.events()) {
    const Json doc = Json::parse(TraceJournal::event_json(e).dump());
    for (const char* key :
         {"event", "time", "client", "round", "base_round", "epochs",
          "updates", "value"}) {
      EXPECT_NO_THROW(doc.at(key)) << key;
    }
  }
  // Server rows carry a null client.
  const Json agg = Json::parse(
      TraceJournal::event_json(j.events()[4]).dump());
  EXPECT_TRUE(agg.at("client").is_null());
  EXPECT_EQ(agg.at("event").as_string(), "aggregate");
}

TEST(TraceTest, JsonlIsOneValidObjectPerLine) {
  const TraceJournal j = example_journal();
  const std::string path = ::testing::TempDir() + "/trace_test.jsonl";
  j.write_jsonl(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const Json doc = Json::parse(line);
    EXPECT_NO_THROW(doc.at("event"));
    ++lines;
  }
  EXPECT_EQ(lines, j.events().size());
  std::remove(path.c_str());
}

TEST(TraceTest, ChromeTraceIsWellFormed) {
  const TraceJournal j = example_journal();
  const Json doc = Json::parse(j.chrome_trace("unit test").dump());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const JsonArray& events = doc.at("traceEvents").as_array();
  // 4 metadata rows (2 processes, server thread, 1 client thread) + 6 events.
  ASSERT_EQ(events.size(), 10u);

  std::size_t begins = 0, ends = 0, instants = 0, counters = 0, metas = 0;
  for (const Json& e : events) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "i") ++instants;
    if (ph == "C") ++counters;
    if (ph == "M") ++metas;
    EXPECT_NO_THROW(e.at("pid"));
    EXPECT_NO_THROW(e.at("tid"));
  }
  EXPECT_EQ(metas, 4u);
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
  EXPECT_EQ(instants, 3u);  // 2 epoch markers + 1 aggregate
  EXPECT_EQ(counters, 1u);  // accuracy track
}

TEST(TraceTest, ChromeSlicesBalanceAndMapVirtualSecondsToMicros) {
  const TraceJournal j = example_journal();
  const Json doc = Json::parse(j.chrome_trace().dump());
  double begin_ts = -1.0, end_ts = -1.0;
  std::string begin_name, end_name;
  for (const Json& e : doc.at("traceEvents").as_array()) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "B") {
      begin_ts = e.at("ts").as_double();
      begin_name = e.at("name").as_string();
      EXPECT_EQ(e.at("pid").as_u64(), 0u);
      EXPECT_EQ(e.at("tid").as_u64(), 3u);
    }
    if (ph == "E") {
      end_ts = e.at("ts").as_double();
      end_name = e.at("name").as_string();
    }
  }
  EXPECT_EQ(begin_name, "train r0");
  EXPECT_EQ(end_name, begin_name);  // E closes the B by name
  EXPECT_DOUBLE_EQ(begin_ts, 0.0);
  EXPECT_DOUBLE_EQ(end_ts, 3.25 * 1e6);  // virtual seconds -> trace micros
  EXPECT_LE(begin_ts, end_ts);
}

TEST(TraceTest, LostUploadStillClosesTheSlice) {
  TraceJournal j;
  TraceEvent assigned = make(TraceEventKind::kAssigned, 0.0, 1);
  assigned.epochs = 2;
  j.record(assigned);
  TraceEvent lost = make(TraceEventKind::kUploadLost, 2.0, 1);
  lost.epochs = 2;
  j.record(lost);
  const Json doc = Json::parse(j.chrome_trace().dump());
  bool found_end = false;
  for (const Json& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "E") continue;
    found_end = true;
    EXPECT_TRUE(e.at("args").at("lost").as_bool());
  }
  EXPECT_TRUE(found_end);
}

TEST(TraceTest, InFlightSessionsCloseAtTheHorizon) {
  // A client still training when the run stops must not leave an unbalanced
  // B slice; the exporter closes it at the journal's latest timestamp.
  TraceJournal j;
  TraceEvent assigned = make(TraceEventKind::kAssigned, 1.0, 5);
  assigned.epochs = 2;
  j.record(assigned);
  j.record(make(TraceEventKind::kEval, 7.0, kServerTrack));
  const Json doc = Json::parse(j.chrome_trace().dump());
  std::size_t begins = 0, ends = 0;
  for (const Json& e : doc.at("traceEvents").as_array()) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "B") ++begins;
    if (ph == "E") {
      ++ends;
      EXPECT_DOUBLE_EQ(e.at("ts").as_double(), 7.0 * 1e6);
      EXPECT_TRUE(e.at("args").at("unfinished").as_bool());
    }
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
}

TEST(TraceTest, ClearEmptiesTheJournal) {
  TraceJournal j = example_journal();
  EXPECT_FALSE(j.events().empty());
  j.clear();
  EXPECT_TRUE(j.events().empty());
  EXPECT_EQ(Json::parse(j.chrome_trace().dump())
                .at("traceEvents")
                .as_array()
                .size(),
            3u);  // only the process/server metadata rows remain
}

}  // namespace
}  // namespace seafl::obs
