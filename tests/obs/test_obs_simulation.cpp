// Simulation-level guarantees of the observability layer: attaching a trace
// sink never changes a run's results, and the journal's event stream is
// consistent with the RunResult's own accounting.
#include <gtest/gtest.h>

#include <map>

#include "core/presets.h"
#include "data/registry.h"
#include "obs/obs.h"
#include "sim/fleet.h"

namespace seafl {
namespace {

struct Fixture {
  FlTask task;
  Fleet fleet;

  Fixture()
      : task(make_task([] {
          TaskSpec spec;
          spec.name = "synth-mnist";
          spec.num_clients = 12;
          spec.samples_per_client = 15;
          spec.test_samples = 60;
          return spec;
        }())),
        fleet([] {
          FleetConfig fc;
          fc.num_devices = 12;
          fc.pareto_shape = 1.3;  // real stragglers -> staleness + notifies
          fc.seed = 7;
          return fc;
        }()) {}

  ExperimentParams params() const {
    ExperimentParams p;
    p.buffer_size = 3;
    p.concurrency = 6;
    p.staleness_limit = 2;
    p.local_epochs = 2;
    p.batch_size = 8;
    p.max_rounds = 12;
    p.stop_at_target = false;
    p.seed = 42;
    return p;
  }
};

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].time, b.curve[i].time);
    EXPECT_EQ(a.curve[i].accuracy, b.curve[i].accuracy);
    EXPECT_EQ(a.curve[i].loss, b.curve[i].loss);
  }
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_EQ(a.model_downloads, b.model_downloads);
  EXPECT_EQ(a.model_uploads, b.model_uploads);
  EXPECT_EQ(a.notifications, b.notifications);
  EXPECT_EQ(a.lost_uploads, b.lost_uploads);
  EXPECT_EQ(a.mean_staleness, b.mean_staleness);
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size());
  for (std::size_t i = 0; i < a.final_weights.size(); ++i)
    EXPECT_EQ(a.final_weights[i], b.final_weights[i]);  // bitwise
}

TEST(ObsSimulationTest, TracingIsObservationOnly) {
  Fixture f;
  const RunResult plain =
      run_arm("seafl2", f.params(), f.task, f.fleet, nullptr);
  obs::TraceJournal journal;
  const RunResult traced =
      run_arm("seafl2", f.params(), f.task, f.fleet, &journal);
  EXPECT_FALSE(journal.events().empty());
  expect_identical(plain, traced);
}

TEST(ObsSimulationTest, ProfilingIsObservationOnly) {
  Fixture f;
  const RunResult plain = run_arm("seafl", f.params(), f.task, f.fleet);
  obs::ProfilingScope scope;
  const RunResult profiled = run_arm("seafl", f.params(), f.task, f.fleet);
  expect_identical(plain, profiled);
  // The phase probes actually fired while enabled.
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  EXPECT_GT(snap.counters.at("fl.client_train.calls"), 0u);
  EXPECT_GT(snap.counters.at("fl.aggregate.calls"), 0u);
  EXPECT_GT(snap.counters.at("fl.evaluate.calls"), 0u);
  EXPECT_GT(snap.counters.at("tensor.gemm.calls"), 0u);
}

TEST(ObsSimulationTest, JournalMatchesRunResultAccounting) {
  Fixture f;
  obs::TraceJournal journal;
  const RunResult r = run_arm("seafl2", f.params(), f.task, f.fleet, &journal);

  std::map<obs::TraceEventKind, std::size_t> counts;
  for (const obs::TraceEvent& e : journal.events()) ++counts[e.kind];

  EXPECT_EQ(counts[obs::TraceEventKind::kAssigned], r.model_downloads);
  EXPECT_EQ(counts[obs::TraceEventKind::kUpload], r.model_uploads);
  EXPECT_EQ(counts[obs::TraceEventKind::kUploadLost], r.lost_uploads);
  EXPECT_EQ(counts[obs::TraceEventKind::kNotified], r.notifications);
  EXPECT_EQ(counts[obs::TraceEventKind::kAggregate], r.aggregations);
  EXPECT_EQ(counts[obs::TraceEventKind::kEval], r.curve.size());
  EXPECT_EQ(r.rounds, 12u);
}

TEST(ObsSimulationTest, JournalSequenceMatchesRecordedRounds) {
  Fixture f;
  obs::TraceJournal journal;
  const RunResult r = run_arm("seafl2", f.params(), f.task, f.fleet, &journal);

  // Aggregate events mirror the round log, in order.
  std::size_t agg_i = 0;
  std::size_t eval_i = 0;
  for (const obs::TraceEvent& e : journal.events()) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LE(e.time, r.final_time);
    if (e.kind == obs::TraceEventKind::kAggregate) {
      ASSERT_LT(agg_i, r.round_log.size());
      EXPECT_EQ(e.round, r.round_log[agg_i].round);
      EXPECT_EQ(e.updates, r.round_log[agg_i].updates);
      EXPECT_EQ(e.value, r.round_log[agg_i].mean_staleness);
      EXPECT_EQ(e.time, r.round_log[agg_i].time);
      ++agg_i;
    } else if (e.kind == obs::TraceEventKind::kEval) {
      ASSERT_LT(eval_i, r.curve.size());
      EXPECT_EQ(e.round, r.curve[eval_i].round);
      EXPECT_EQ(e.value, r.curve[eval_i].accuracy);
      ++eval_i;
    }
  }
  EXPECT_EQ(agg_i, r.round_log.size());
  EXPECT_EQ(eval_i, r.curve.size());
}

TEST(ObsSimulationTest, PerClientLifecycleIsWellFormed) {
  Fixture f;
  obs::TraceJournal journal;
  run_arm("seafl2", f.params(), f.task, f.fleet, &journal);

  // Per client: sessions alternate assigned -> (epochs/notify) -> upload or
  // lost; epoch indices count up from 1 within a session.
  std::map<std::size_t, bool> in_session;
  std::map<std::size_t, std::size_t> last_epoch;
  for (const obs::TraceEvent& e : journal.events()) {
    switch (e.kind) {
      case obs::TraceEventKind::kAssigned:
        EXPECT_FALSE(in_session[e.client]) << "client " << e.client;
        in_session[e.client] = true;
        last_epoch[e.client] = 0;
        EXPECT_GT(e.epochs, 0u);  // planned epochs
        break;
      case obs::TraceEventKind::kEpochDone:
        EXPECT_TRUE(in_session[e.client]);
        EXPECT_EQ(e.epochs, last_epoch[e.client] + 1);
        last_epoch[e.client] = e.epochs;
        break;
      case obs::TraceEventKind::kUpload:
        EXPECT_TRUE(in_session[e.client]);
        EXPECT_EQ(e.epochs, last_epoch[e.client]);
        EXPECT_GE(e.round, e.base_round);  // staleness is non-negative
        EXPECT_EQ(e.value,
                  static_cast<double>(e.round - e.base_round));
        in_session[e.client] = false;
        break;
      case obs::TraceEventKind::kUploadLost:
        EXPECT_TRUE(in_session[e.client]);
        in_session[e.client] = false;
        break;
      case obs::TraceEventKind::kNotified:
        EXPECT_TRUE(in_session[e.client]);
        break;
      default:
        break;
    }
  }
}

TEST(ObsSimulationTest, ChromeExportOfARealRunParses) {
  Fixture f;
  obs::TraceJournal journal;
  run_arm("fedbuff", f.params(), f.task, f.fleet, &journal);
  const Json doc = Json::parse(journal.chrome_trace("fedbuff").dump());
  const JsonArray& events = doc.at("traceEvents").as_array();
  EXPECT_GT(events.size(), journal.events().size());  // + metadata rows
  std::int64_t open = 0;
  for (const Json& e : events) {
    const std::string ph = e.at("ph").as_string();
    if (ph == "B") ++open;
    if (ph == "E") --open;
    EXPECT_GE(open, 0);  // never close an unopened slice
  }
  EXPECT_GE(open, 0);
}

}  // namespace
}  // namespace seafl
