#include <gtest/gtest.h>

#include "data/dataset.h"

namespace seafl {
namespace {

Dataset make_toy() {
  // 4 samples of 1x2x2 images, labels 0..1.
  InputSpec input{1, 2, 2};
  Tensor features({4, 4});
  for (std::size_t i = 0; i < 16; ++i)
    features[i] = static_cast<float>(i);
  return Dataset(input, std::move(features), {0, 1, 0, 1}, 2);
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = make_toy();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.num_classes(), 2u);
  EXPECT_EQ(d.sample_numel(), 4u);
  EXPECT_EQ(d.label(1), 1);
  const auto s = d.sample(2);
  EXPECT_EQ(s[0], 8.0f);
  EXPECT_EQ(s[3], 11.0f);
}

TEST(DatasetTest, ConstructionValidatesSizes) {
  InputSpec input{1, 2, 2};
  EXPECT_THROW(Dataset(input, Tensor({3, 4}), {0, 1}, 2), Error);
  EXPECT_THROW(Dataset(input, Tensor({2, 4}), {0, 5}, 2), Error);   // bad label
  EXPECT_THROW(Dataset(input, Tensor({2, 4}), {0, -1}, 2), Error);  // negative
  EXPECT_THROW(Dataset(input, Tensor({2, 4}), {0, 0}, 1), Error);   // 1 class
}

TEST(DatasetTest, GatherFlat) {
  Dataset d = make_toy();
  Tensor batch;
  std::vector<std::int32_t> labels;
  const std::vector<std::size_t> idx{3, 0};
  d.gather(idx, batch, labels, /*as_images=*/false);
  EXPECT_EQ(batch.shape(), (Shape{2, 4}));
  EXPECT_EQ(batch[0], 12.0f);  // sample 3 first
  EXPECT_EQ(batch[4], 0.0f);   // sample 0 second
  EXPECT_EQ(labels, (std::vector<std::int32_t>{1, 0}));
}

TEST(DatasetTest, GatherAsImages) {
  Dataset d = make_toy();
  Tensor batch;
  std::vector<std::int32_t> labels;
  const std::vector<std::size_t> idx{1};
  d.gather(idx, batch, labels, /*as_images=*/true);
  EXPECT_EQ(batch.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(batch[2], 6.0f);
}

TEST(DatasetTest, GatherRejectsOutOfRange) {
  Dataset d = make_toy();
  Tensor batch;
  std::vector<std::int32_t> labels;
  const std::vector<std::size_t> idx{4};
  EXPECT_THROW(d.gather(idx, batch, labels, false), Error);
}

TEST(DatasetTest, SubsetMaterializesIndependentCopy) {
  Dataset d = make_toy();
  const std::vector<std::size_t> idx{1, 3};
  Dataset sub = d.subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.label(0), 1);
  EXPECT_EQ(sub.label(1), 1);
  EXPECT_EQ(sub.sample(0)[0], 4.0f);
  EXPECT_EQ(sub.num_classes(), 2u);
}

TEST(DatasetTest, ClassHistogram) {
  Dataset d = make_toy();
  const auto hist = d.class_histogram();
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 2u);
}

TEST(DatasetTest, GatherReusesOutputBuffer) {
  Dataset d = make_toy();
  Tensor batch;
  std::vector<std::int32_t> labels;
  const std::vector<std::size_t> idx{0, 1};
  d.gather(idx, batch, labels, false);
  const float* ptr = batch.data();
  d.gather(idx, batch, labels, false);
  EXPECT_EQ(batch.data(), ptr);  // same allocation for same shape
}

}  // namespace
}  // namespace seafl
