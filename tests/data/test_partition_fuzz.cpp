// Randomized property testing of the partitioners: exact cover, floors and
// determinism must hold for arbitrary (clients, alpha, dataset size) draws.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "data/partition.h"
#include "data/synthetic.h"

namespace seafl {
namespace {

class PartitionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionFuzz, DirichletAlwaysExactlyCovers) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const auto classes = static_cast<std::size_t>(rng.uniform_int(2, 12));
    const auto clients = static_cast<std::size_t>(rng.uniform_int(1, 40));
    const auto per_client = static_cast<std::size_t>(rng.uniform_int(4, 30));
    const double alpha = rng.uniform(0.05, 10.0);

    GaussianSpec spec;
    spec.num_samples = clients * per_client + classes;
    spec.num_classes = classes;
    spec.input = {1, 1, 4};
    spec.seed = rng();
    const Dataset data = make_gaussian_dataset(spec);

    const auto p = dirichlet_partition(data, clients, alpha, rng(),
                                       /*min_per_client=*/2);
    ASSERT_EQ(p.size(), clients);
    std::set<std::size_t> seen;
    std::size_t total = 0;
    for (const auto& idx : p) {
      ASSERT_GE(idx.size(), 2u);
      for (const auto i : idx) {
        ASSERT_LT(i, data.size());
        ASSERT_TRUE(seen.insert(i).second) << "duplicate index " << i;
        ++total;
      }
    }
    ASSERT_EQ(total, data.size());
  }
}

TEST_P(PartitionFuzz, IidAlwaysExactlyCoversAndBalances) {
  Rng rng(GetParam() + 31);
  for (int trial = 0; trial < 10; ++trial) {
    const auto clients = static_cast<std::size_t>(rng.uniform_int(1, 30));
    const auto samples =
        clients + static_cast<std::size_t>(rng.uniform_int(10, 200));

    GaussianSpec spec;
    spec.num_samples = samples;
    spec.num_classes = 2;
    spec.input = {1, 1, 4};
    spec.seed = rng();
    const Dataset data = make_gaussian_dataset(spec);

    const auto p = iid_partition(data, clients, rng());
    std::size_t min_size = data.size(), max_size = 0, total = 0;
    std::set<std::size_t> seen;
    for (const auto& idx : p) {
      min_size = std::min(min_size, idx.size());
      max_size = std::max(max_size, idx.size());
      for (const auto i : idx) {
        ASSERT_TRUE(seen.insert(i).second);
        ++total;
      }
    }
    ASSERT_EQ(total, data.size());
    ASSERT_LE(max_size - min_size, 1u);  // round-robin balance
  }
}

TEST_P(PartitionFuzz, SkewIsMonotoneInAlphaOnAverage) {
  Rng rng(GetParam() + 77);
  GaussianSpec spec;
  spec.num_samples = 600;
  spec.num_classes = 10;
  spec.input = {1, 1, 4};
  spec.seed = GetParam();
  const Dataset data = make_gaussian_dataset(spec);

  double skew_low = 0.0, skew_high = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    skew_low += partition_skew(data,
                               dirichlet_partition(data, 15, 0.1, rng()));
    skew_high += partition_skew(data,
                                dirichlet_partition(data, 15, 20.0, rng()));
  }
  EXPECT_GT(skew_low, skew_high);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionFuzz,
                         ::testing::Values(3, 17, 256, 9001));

}  // namespace
}  // namespace seafl
