#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/partition.h"
#include "data/synthetic.h"

namespace seafl {
namespace {

Dataset make_data(std::size_t n = 500, std::size_t classes = 10) {
  GaussianSpec spec;
  spec.num_samples = n;
  spec.num_classes = classes;
  spec.input = {1, 1, 8};
  return make_gaussian_dataset(spec);
}

void expect_exact_cover(const Dataset& d, const Partition& p) {
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& idx : p) {
    for (const auto i : idx) {
      EXPECT_LT(i, d.size());
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " duplicated";
      ++total;
    }
  }
  EXPECT_EQ(total, d.size());
}

TEST(DirichletPartitionTest, ExactCoverOfAllSamples) {
  Dataset d = make_data();
  const auto p = dirichlet_partition(d, 20, 0.3, 1);
  ASSERT_EQ(p.size(), 20u);
  expect_exact_cover(d, p);
}

TEST(DirichletPartitionTest, MinPerClientGuaranteed) {
  Dataset d = make_data();
  const auto p = dirichlet_partition(d, 50, 0.05, 2, /*min_per_client=*/4);
  for (const auto& idx : p) EXPECT_GE(idx.size(), 4u);
}

TEST(DirichletPartitionTest, SeedDeterminism) {
  Dataset d = make_data();
  const auto a = dirichlet_partition(d, 10, 0.3, 42);
  const auto b = dirichlet_partition(d, 10, 0.3, 42);
  EXPECT_EQ(a, b);
  const auto c = dirichlet_partition(d, 10, 0.3, 43);
  EXPECT_NE(a, c);
}

TEST(DirichletPartitionTest, SingleClientGetsEverything) {
  Dataset d = make_data(100);
  const auto p = dirichlet_partition(d, 1, 0.3, 1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].size(), 100u);
}

TEST(DirichletPartitionTest, RejectsTooSmallDataset) {
  Dataset d = make_data(20);
  EXPECT_THROW(dirichlet_partition(d, 15, 0.3, 1, /*min_per_client=*/2),
               Error);
}

// Property: lower concentration -> more label skew (monotone on average).
class DirichletSkewTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirichletSkewTest, SkewDecreasesWithAlpha) {
  Dataset d = make_data(1000);
  const std::uint64_t seed = GetParam();
  const auto skewed = dirichlet_partition(d, 20, 0.1, seed);
  const auto mild = dirichlet_partition(d, 20, 5.0, seed);
  const auto iid = iid_partition(d, 20, seed);
  const double s_skewed = partition_skew(d, skewed);
  const double s_mild = partition_skew(d, mild);
  const double s_iid = partition_skew(d, iid);
  EXPECT_GT(s_skewed, s_mild);
  EXPECT_GT(s_mild, s_iid - 0.05);
  EXPECT_LT(s_iid, 0.2);
  EXPECT_GT(s_skewed, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirichletSkewTest,
                         ::testing::Values(1, 7, 42, 1234));

TEST(IidPartitionTest, RoundRobinBalance) {
  Dataset d = make_data(103);
  const auto p = iid_partition(d, 10, 3);
  expect_exact_cover(d, p);
  for (const auto& idx : p) {
    EXPECT_GE(idx.size(), 10u);
    EXPECT_LE(idx.size(), 11u);
  }
}

TEST(IidPartitionTest, RejectsMoreClientsThanSamples) {
  Dataset d = make_data(10);
  EXPECT_THROW(iid_partition(d, 11, 1), Error);
}

TEST(PartitionSkewTest, EmptyClientsAreIgnored) {
  Dataset d = make_data(100);
  Partition p(3);
  for (std::size_t i = 0; i < 100; ++i) p[0].push_back(i);
  // Clients 1 and 2 are empty; skew is computed over client 0 only, whose
  // distribution equals the global one.
  EXPECT_NEAR(partition_skew(d, p), 0.0, 1e-12);
}

}  // namespace
}  // namespace seafl
