#include <gtest/gtest.h>

#include <set>

#include "data/loader.h"
#include "data/synthetic.h"

namespace seafl {
namespace {

Dataset make_data(std::size_t n = 50) {
  GaussianSpec spec;
  spec.num_samples = n;
  spec.num_classes = 5;
  spec.input = {1, 1, 4};
  return make_gaussian_dataset(spec);
}

std::vector<std::size_t> iota_indices(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

TEST(DataLoaderTest, EpochVisitsEverySampleOnce) {
  Dataset d = make_data(23);
  DataLoader loader(d, iota_indices(23), 5, false);
  Rng rng(1);
  loader.begin_epoch(rng);

  Tensor batch;
  std::vector<std::int32_t> labels;
  std::multiset<float> seen;
  std::size_t total = 0;
  while (loader.next(batch, labels)) {
    total += labels.size();
    for (std::size_t b = 0; b < labels.size(); ++b)
      seen.insert(batch[b * 4]);  // first feature identifies the sample
  }
  EXPECT_EQ(total, 23u);
  EXPECT_EQ(seen.size(), 23u);
}

TEST(DataLoaderTest, BatchSizes) {
  Dataset d = make_data(10);
  DataLoader loader(d, iota_indices(10), 4, false);
  Rng rng(2);
  loader.begin_epoch(rng);
  Tensor batch;
  std::vector<std::int32_t> labels;
  std::vector<std::size_t> sizes;
  while (loader.next(batch, labels)) sizes.push_back(labels.size());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{4, 4, 2}));
  EXPECT_EQ(loader.batches_per_epoch(), 3u);
}

TEST(DataLoaderTest, ShuffleIsSeedDeterministic) {
  Dataset d = make_data(20);
  DataLoader a(d, iota_indices(20), 20, false);
  DataLoader b(d, iota_indices(20), 20, false);
  Rng ra(7), rb(7);
  a.begin_epoch(ra);
  b.begin_epoch(rb);
  Tensor ba, bb;
  std::vector<std::int32_t> la, lb;
  a.next(ba, la);
  b.next(bb, lb);
  EXPECT_EQ(la, lb);
  EXPECT_TRUE(ba.equals(bb));
}

TEST(DataLoaderTest, DifferentEpochsShuffleDifferently) {
  Dataset d = make_data(30);
  DataLoader loader(d, iota_indices(30), 30, false);
  Rng rng(9);
  Tensor b1, b2;
  std::vector<std::int32_t> l1, l2;
  loader.begin_epoch(rng);
  loader.next(b1, l1);
  loader.begin_epoch(rng);
  loader.next(b2, l2);
  EXPECT_FALSE(b1.equals(b2));
}

TEST(DataLoaderTest, SubsetOnlyTouchesGivenIndices) {
  Dataset d = make_data(50);
  const std::vector<std::size_t> subset{3, 7, 11};
  DataLoader loader(d, subset, 2, false);
  Rng rng(3);
  loader.begin_epoch(rng);
  Tensor batch;
  std::vector<std::int32_t> labels;
  std::multiset<float> seen;
  while (loader.next(batch, labels))
    for (std::size_t b = 0; b < labels.size(); ++b) seen.insert(batch[b * 4]);
  std::multiset<float> expected{d.sample(3)[0], d.sample(7)[0],
                                d.sample(11)[0]};
  EXPECT_EQ(seen, expected);
}

TEST(DataLoaderTest, NextBeforeEpochStartsAtCursorZero) {
  Dataset d = make_data(8);
  DataLoader loader(d, iota_indices(4), 2, false);
  // Without begin_epoch the loader iterates the unshuffled indices.
  Tensor batch;
  std::vector<std::int32_t> labels;
  EXPECT_TRUE(loader.next(batch, labels));
  EXPECT_TRUE(loader.next(batch, labels));
  EXPECT_FALSE(loader.next(batch, labels));
}

TEST(DataLoaderTest, RejectsInvalidConstruction) {
  Dataset d = make_data(10);
  EXPECT_THROW(DataLoader(d, {}, 2, false), Error);
  EXPECT_THROW(DataLoader(d, iota_indices(5), 0, false), Error);
  EXPECT_THROW(DataLoader(d, {99}, 1, false), Error);
}

TEST(DataLoaderTest, ImageLayoutBatches) {
  GaussianSpec spec;
  spec.num_samples = 6;
  spec.num_classes = 2;
  spec.input = {2, 3, 3};
  Dataset d = make_gaussian_dataset(spec);
  DataLoader loader(d, iota_indices(6), 4, /*as_images=*/true);
  Rng rng(4);
  loader.begin_epoch(rng);
  Tensor batch;
  std::vector<std::int32_t> labels;
  ASSERT_TRUE(loader.next(batch, labels));
  EXPECT_EQ(batch.shape(), (Shape{4, 2, 3, 3}));
}

}  // namespace
}  // namespace seafl
