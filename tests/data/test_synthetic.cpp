#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "tensor/ops.h"

namespace seafl {
namespace {

TEST(GaussianDatasetTest, ShapeAndBalance) {
  GaussianSpec spec;
  spec.num_samples = 100;
  spec.num_classes = 10;
  spec.input = {1, 1, 16};
  Dataset d = make_gaussian_dataset(spec);
  EXPECT_EQ(d.size(), 100u);
  EXPECT_EQ(d.sample_numel(), 16u);
  const auto hist = d.class_histogram();
  for (const auto c : hist) EXPECT_EQ(c, 10u);  // round-robin labels
}

TEST(GaussianDatasetTest, SeedDeterminism) {
  GaussianSpec spec;
  spec.num_samples = 50;
  spec.seed = 7;
  Dataset a = make_gaussian_dataset(spec);
  Dataset b = make_gaussian_dataset(spec);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    const auto sa = a.sample(i), sb = b.sample(i);
    for (std::size_t j = 0; j < sa.size(); ++j) ASSERT_EQ(sa[j], sb[j]);
  }
}

TEST(GaussianDatasetTest, DifferentSeedsDiffer) {
  GaussianSpec spec;
  spec.num_samples = 10;
  spec.seed = 1;
  Dataset a = make_gaussian_dataset(spec);
  spec.seed = 2;
  Dataset b = make_gaussian_dataset(spec);
  EXPECT_NE(a.sample(0)[0], b.sample(0)[0]);
}

TEST(GaussianDatasetTest, SameClassSamplesAreCloserThanCrossClass) {
  GaussianSpec spec;
  spec.num_samples = 400;
  spec.num_classes = 4;
  spec.input = {1, 1, 32};
  spec.noise = 0.3;
  Dataset d = make_gaussian_dataset(spec);

  auto dist2 = [&](std::size_t i, std::size_t j) {
    const auto a = d.sample(i), b = d.sample(j);
    double acc = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k)
      acc += (a[k] - b[k]) * (a[k] - b[k]);
    return acc;
  };
  // Samples i and i+4 share a class (round-robin); i and i+1 do not.
  double same = 0.0, cross = 0.0;
  for (std::size_t i = 0; i + 4 < 200; ++i) {
    same += dist2(i, i + 4);
    cross += dist2(i, i + 1);
  }
  EXPECT_LT(same, cross * 0.8);
}

TEST(GaussianDatasetTest, RejectsBadSpecs) {
  GaussianSpec spec;
  spec.num_classes = 1;
  EXPECT_THROW(make_gaussian_dataset(spec), Error);
  spec.num_classes = 10;
  spec.num_samples = 5;
  EXPECT_THROW(make_gaussian_dataset(spec), Error);
}

TEST(PatternDatasetTest, ShapeAndBalance) {
  PatternSpec spec;
  spec.num_samples = 60;
  spec.num_classes = 6;
  spec.input = {3, 8, 8};
  Dataset d = make_pattern_dataset(spec);
  EXPECT_EQ(d.size(), 60u);
  EXPECT_EQ(d.sample_numel(), 3u * 64u);
  for (const auto c : d.class_histogram()) EXPECT_EQ(c, 10u);
}

TEST(PatternDatasetTest, SeedDeterminism) {
  PatternSpec spec;
  spec.num_samples = 20;
  spec.seed = 11;
  Dataset a = make_pattern_dataset(spec);
  Dataset b = make_pattern_dataset(spec);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto sa = a.sample(i), sb = b.sample(i);
    for (std::size_t j = 0; j < sa.size(); ++j) ASSERT_EQ(sa[j], sb[j]);
  }
}

TEST(PatternDatasetTest, ClassTemplatesAreCorrelatedWithinClass) {
  PatternSpec spec;
  spec.num_samples = 200;
  spec.num_classes = 4;
  spec.input = {1, 10, 10};
  spec.noise = 0.2;
  Dataset d = make_pattern_dataset(spec);
  // Cosine similarity within class should exceed cross-class on average.
  double same = 0.0, cross = 0.0;
  int n_same = 0, n_cross = 0;
  for (std::size_t i = 0; i + 5 < 100; ++i) {
    if (d.label(i) == d.label(i + 4)) {
      same += cosine_similarity(d.sample(i), d.sample(i + 4));
      ++n_same;
    }
    if (d.label(i) != d.label(i + 1)) {
      cross += cosine_similarity(d.sample(i), d.sample(i + 1));
      ++n_cross;
    }
  }
  ASSERT_GT(n_same, 0);
  ASSERT_GT(n_cross, 0);
  EXPECT_GT(same / n_same, cross / n_cross + 0.2);
}

TEST(PatternDatasetTest, NoiseReducesWithinClassSimilarity) {
  PatternSpec low, high;
  low.num_samples = high.num_samples = 100;
  low.noise = 0.1;
  high.noise = 2.0;
  Dataset a = make_pattern_dataset(low);
  Dataset b = make_pattern_dataset(high);
  auto mean_sim = [](const Dataset& d) {
    double acc = 0.0;
    int n = 0;
    for (std::size_t i = 0; i + 10 < d.size(); ++i) {
      acc += cosine_similarity(d.sample(i), d.sample(i + 10));
      ++n;
    }
    return acc / n;
  };
  EXPECT_GT(mean_sim(a), mean_sim(b) + 0.1);
}

TEST(PatternDatasetTest, RejectsBadSpecs) {
  PatternSpec spec;
  spec.waves_per_class = 0;
  EXPECT_THROW(make_pattern_dataset(spec), Error);
}

}  // namespace
}  // namespace seafl
