// PartitionView seam (DESIGN.md §16): the materialized wrapper must be a
// zero-cost window over classic index lists, and the pooled lazy view must
// regenerate each client's list bit-for-bit on every query.
#include <gtest/gtest.h>

#include <vector>

#include "data/partition.h"
#include "data/synthetic.h"

namespace seafl {
namespace {

Dataset make_data(std::size_t n = 500, std::size_t classes = 10) {
  GaussianSpec spec;
  spec.num_samples = n;
  spec.num_classes = classes;
  spec.input = {1, 1, 8};
  return make_gaussian_dataset(spec);
}

std::vector<std::size_t> indices_of(const PartitionView& view,
                                    std::size_t client) {
  std::vector<std::size_t> scratch;
  const auto span = view.client_indices(client, scratch);
  return {span.begin(), span.end()};
}

class MaterializedViewTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaterializedViewTest, MirrorsRawListsBitwise) {
  const Dataset d = make_data();
  const std::uint64_t seed = GetParam();
  for (const Partition& p : {dirichlet_partition(d, 20, 0.3, seed),
                             iid_partition(d, 20, seed)}) {
    const MaterializedPartition view(p);
    ASSERT_EQ(view.num_clients(), p.size());
    std::vector<std::size_t> scratch{999};  // sentinel: must not be touched
    for (std::size_t c = 0; c < p.size(); ++c) {
      EXPECT_EQ(view.client_samples(c), p[c].size());
      const auto span = view.client_indices(c, scratch);
      EXPECT_EQ(std::vector<std::size_t>(span.begin(), span.end()), p[c]);
    }
    EXPECT_EQ(scratch, std::vector<std::size_t>{999});
    EXPECT_EQ(materialize(view), p);
  }
}

TEST_P(MaterializedViewTest, ViewSkewMatchesListSkew) {
  const Dataset d = make_data();
  const Partition p = dirichlet_partition(d, 20, 0.3, GetParam());
  const MaterializedPartition view(p);
  EXPECT_DOUBLE_EQ(partition_skew(d, view), partition_skew(d, p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaterializedViewTest,
                         ::testing::Values(1, 42, 1234));

TEST(PooledPartitionTest, RegeneratesBitwiseOnEveryQuery) {
  const Dataset d = make_data(400);
  const PooledPartition view(d, /*num_clients=*/1000, /*samples_per_client=*/25,
                             /*alpha=*/0.3, /*seed=*/42);
  EXPECT_EQ(view.num_clients(), 1000u);
  // Repeated and interleaved queries of the same client must agree exactly,
  // and a second identically-constructed view must reproduce them.
  const PooledPartition twin(d, 1000, 25, 0.3, 42);
  for (const std::size_t c : {std::size_t{0}, std::size_t{7}, std::size_t{999},
                              std::size_t{7}}) {
    const auto first = indices_of(view, c);
    EXPECT_EQ(first.size(), 25u);
    EXPECT_EQ(view.client_samples(c), 25u);
    for (const std::size_t i : first) EXPECT_LT(i, d.size());
    EXPECT_EQ(indices_of(view, c), first);
    EXPECT_EQ(indices_of(twin, c), first);
  }
}

TEST(PooledPartitionTest, SeedAndClientChangeTheDraw) {
  const Dataset d = make_data(400);
  const PooledPartition a(d, 50, 25, 0.3, 42);
  const PooledPartition b(d, 50, 25, 0.3, 43);
  EXPECT_NE(indices_of(a, 0), indices_of(b, 0));
  EXPECT_NE(indices_of(a, 0), indices_of(a, 1));
}

TEST(PooledPartitionTest, MaterializeMatchesPerClientQueries) {
  const Dataset d = make_data(300);
  const PooledPartition view(d, 30, 12, 0.3, 7);
  const Partition lists = materialize(view);
  ASSERT_EQ(lists.size(), 30u);
  for (std::size_t c = 0; c < lists.size(); ++c) {
    EXPECT_EQ(lists[c], indices_of(view, c));
  }
}

TEST(PooledPartitionTest, AlphaControlsLabelSkew) {
  const Dataset d = make_data(1000);
  const PooledPartition skewed(d, 40, 25, /*alpha=*/0.05, 42);
  const PooledPartition mild(d, 40, 25, /*alpha=*/5.0, 42);
  EXPECT_GT(partition_skew(d, skewed), partition_skew(d, mild));
  EXPECT_LT(partition_skew(d, mild), 0.3);
}

TEST(PooledPartitionTest, SkewCapBoundsTheScan) {
  // A million-client view's skew must be computable by sampling a prefix.
  const Dataset d = make_data(400);
  const PooledPartition view(d, 1'000'000, 25, 0.3, 42);
  const double capped = partition_skew(d, view, /*max_clients=*/64);
  EXPECT_GE(capped, 0.0);
  EXPECT_LE(capped, 1.0);
}

}  // namespace
}  // namespace seafl
