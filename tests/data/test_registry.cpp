#include <gtest/gtest.h>

#include "data/registry.h"

namespace seafl {
namespace {

TaskSpec small_spec(const std::string& name) {
  TaskSpec spec;
  spec.name = name;
  spec.num_clients = 10;
  spec.samples_per_client = 20;
  spec.test_samples = 50;
  return spec;
}

class RegistryTaskTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryTaskTest, BuildsConsistentTask) {
  const FlTask task = make_task(small_spec(GetParam()));
  EXPECT_EQ(task.name, GetParam());
  EXPECT_EQ(task.num_clients(), 10u);
  EXPECT_EQ(task.train.size(), 200u);
  EXPECT_EQ(task.test.size(), 50u);
  EXPECT_EQ(task.num_classes, 10u);
  EXPECT_GT(task.target_accuracy, 0.5);
  EXPECT_LT(task.target_accuracy, 1.0);

  // Partition covers the training set exactly.
  std::size_t total = 0;
  for (const auto& idx : materialize(*task.partition)) {
    total += idx.size();
    for (const auto i : idx) EXPECT_LT(i, task.train.size());
  }
  EXPECT_EQ(total, task.train.size());

  // Input geometry is consistent between splits and the spec.
  EXPECT_EQ(task.train.input().numel(), task.input.numel());
  EXPECT_EQ(task.test.input().numel(), task.input.numel());
}

INSTANTIATE_TEST_SUITE_P(AllTasks, RegistryTaskTest,
                         ::testing::ValuesIn(known_tasks()));

TEST(RegistryTest, KnownTasksListsFour) {
  const auto names = known_tasks();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "synth-mnist");
}

TEST(RegistryTest, UnknownTaskThrows) {
  EXPECT_THROW(make_task(small_spec("cifar-100")), Error);
}

TEST(RegistryTest, DefaultModelsMatchPaperMapping) {
  EXPECT_EQ(make_task(small_spec("synth-mnist")).default_model,
            ModelKind::kMlp);
  EXPECT_EQ(make_task(small_spec("synth-emnist")).default_model,
            ModelKind::kLenetLite);
  EXPECT_EQ(make_task(small_spec("synth-cifar10")).default_model,
            ModelKind::kResnetLite);
  EXPECT_EQ(make_task(small_spec("synth-cinic10")).default_model,
            ModelKind::kVggLite);
}

TEST(RegistryTest, TrainAndTestShareDistribution) {
  // Same seed -> same class geometry; a model fit on train transfers to
  // test. Proxy check: per-class means of train and test are close.
  TaskSpec spec = small_spec("synth-mnist");
  spec.samples_per_client = 60;
  spec.test_samples = 300;
  const FlTask task = make_task(spec);

  const std::size_t dim = task.input.numel();
  auto class_mean = [&](const Dataset& d, std::int32_t cls) {
    std::vector<double> mean(dim, 0.0);
    std::size_t n = 0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (d.label(i) != cls) continue;
      const auto s = d.sample(i);
      for (std::size_t j = 0; j < dim; ++j) mean[j] += s[j];
      ++n;
    }
    for (auto& m : mean) m /= static_cast<double>(n);
    return mean;
  };
  for (std::int32_t cls = 0; cls < 3; ++cls) {
    const auto a = class_mean(task.train, cls);
    const auto b = class_mean(task.test, cls);
    double diff = 0.0, norm = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      diff += (a[j] - b[j]) * (a[j] - b[j]);
      norm += a[j] * a[j];
    }
    EXPECT_LT(diff, norm) << "class " << cls;
  }
}

TEST(RegistryTest, SeedChangesData) {
  TaskSpec a = small_spec("synth-emnist");
  TaskSpec b = a;
  b.seed = a.seed + 1;
  const FlTask ta = make_task(a);
  const FlTask tb = make_task(b);
  EXPECT_NE(ta.train.sample(0)[0], tb.train.sample(0)[0]);
}

TEST(RegistryTest, CorruptFractionRandomizesClientLabels) {
  TaskSpec clean = small_spec("synth-mnist");
  clean.samples_per_client = 50;
  TaskSpec noisy = clean;
  noisy.corrupt_client_fraction = 0.3;
  const FlTask a = make_task(clean);
  const FlTask b = make_task(noisy);

  // Same features, but some labels differ between clean and corrupted.
  ASSERT_EQ(a.train.size(), b.train.size());
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    ASSERT_EQ(a.train.sample(i)[0], b.train.sample(i)[0]);
    if (a.train.label(i) != b.train.label(i)) ++diff;
  }
  // 3 of 10 clients corrupted with 10 classes: ~27% of their labels change.
  EXPECT_GT(diff, a.train.size() / 20);
  EXPECT_LT(diff, a.train.size() / 2);

  // Test split is never corrupted.
  for (std::size_t i = 0; i < a.test.size(); ++i)
    ASSERT_EQ(a.test.label(i), b.test.label(i));
}

TEST(RegistryTest, CorruptFractionIsDeterministic) {
  TaskSpec spec = small_spec("synth-mnist");
  spec.corrupt_client_fraction = 0.5;
  const FlTask a = make_task(spec);
  const FlTask b = make_task(spec);
  for (std::size_t i = 0; i < a.train.size(); ++i)
    ASSERT_EQ(a.train.label(i), b.train.label(i));
}

TEST(RegistryTest, CorruptFractionValidated) {
  TaskSpec spec = small_spec("synth-mnist");
  spec.corrupt_client_fraction = 1.5;
  EXPECT_THROW(make_task(spec), Error);
}

TEST(RegistryTest, DirichletAlphaControlsSkew) {
  TaskSpec skewed = small_spec("synth-mnist");
  skewed.dirichlet_alpha = 0.1;
  skewed.samples_per_client = 50;
  TaskSpec mild = skewed;
  mild.dirichlet_alpha = 10.0;
  const FlTask ts = make_task(skewed);
  const FlTask tm = make_task(mild);
  EXPECT_GT(partition_skew(ts.train, *ts.partition),
            partition_skew(tm.train, *tm.partition));
}

}  // namespace
}  // namespace seafl
