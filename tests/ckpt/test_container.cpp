// SEAFLCKPT container + typed checkpoint codec (DESIGN.md §15): round
// trips, deterministic encoding, and the full decode-failure classification
// table — every corruption a crashed writer or a bit-rotted disk can
// produce must map to the right DecodeStatus without ever throwing.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/container.h"
#include "common/bytes.h"

namespace seafl::ckpt {
namespace {

std::string small_container() {
  ContainerWriter w;
  w.add(1, "alpha");
  w.add(2, std::string("\x00\x01\x02", 3));
  w.add(7, "");
  return w.finish();
}

DecodeStatus parse(const std::string& bytes, std::vector<Section>& out) {
  return parse_container(bytes.data(), bytes.size(), out);
}

TEST(CkptContainer, RoundTripsSections) {
  const std::string bytes = small_container();
  std::vector<Section> sections;
  ASSERT_EQ(parse(bytes, sections), DecodeStatus::kOk);
  ASSERT_EQ(sections.size(), 3u);
  EXPECT_EQ(sections[0].id, 1u);
  EXPECT_EQ(sections[0].payload, "alpha");
  EXPECT_EQ(sections[1].id, 2u);
  EXPECT_EQ(sections[1].payload, std::string("\x00\x01\x02", 3));
  EXPECT_EQ(sections[2].id, 7u);
  EXPECT_TRUE(sections[2].payload.empty());
}

TEST(CkptContainer, EmptyContainerIsValid) {
  const std::string bytes = ContainerWriter{}.finish();
  std::vector<Section> sections;
  EXPECT_EQ(parse(bytes, sections), DecodeStatus::kOk);
  EXPECT_TRUE(sections.empty());
}

TEST(CkptContainer, EncodingIsDeterministic) {
  EXPECT_EQ(small_container(), small_container());
}

TEST(CkptContainer, EveryStrictPrefixReadsAsTruncated) {
  // The crash-mid-write failure mode: any prefix of a valid container —
  // including cuts through the magic, a section header, a payload and the
  // trailing CRC — must classify as retryable truncation, never as a fatal
  // status (the retention set may hold an older complete checkpoint).
  const std::string bytes = small_container();
  std::vector<Section> sections;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const DecodeStatus s = parse_container(bytes.data(), len, sections);
    EXPECT_EQ(s, DecodeStatus::kTruncated) << "prefix length " << len;
    EXPECT_FALSE(is_fatal(s));
    EXPECT_TRUE(sections.empty());
  }
}

TEST(CkptContainer, WrongMagicIsFatal) {
  std::string bytes = small_container();
  bytes[0] ^= 0x40;
  std::vector<Section> sections;
  const DecodeStatus s = parse(bytes, sections);
  EXPECT_EQ(s, DecodeStatus::kBadMagic);
  EXPECT_TRUE(is_fatal(s));
}

TEST(CkptContainer, UnknownVersionIsFatal) {
  std::string bytes = small_container();
  // Version lives right after the 8-byte magic, little-endian u32.
  bytes[8] = static_cast<char>(kContainerVersion + 1);
  std::vector<Section> sections;
  const DecodeStatus s = parse(bytes, sections);
  EXPECT_EQ(s, DecodeStatus::kBadVersion);
  EXPECT_TRUE(is_fatal(s));
}

TEST(CkptContainer, FlippedPayloadByteIsBadCrc) {
  std::string bytes = small_container();
  // Flip one bit inside the first section's payload: the structure still
  // walks, only the checksum disagrees.
  const std::size_t payload_start = 8 + 4 + 4 + 4 + 8;
  bytes[payload_start] ^= 0x01;
  std::vector<Section> sections;
  const DecodeStatus s = parse(bytes, sections);
  EXPECT_EQ(s, DecodeStatus::kBadCrc);
  EXPECT_TRUE(is_fatal(s));
  EXPECT_TRUE(sections.empty());
}

TEST(CkptContainer, TrailingSlackIsMalformed) {
  std::string bytes = small_container() + "x";
  std::vector<Section> sections;
  EXPECT_EQ(parse(bytes, sections), DecodeStatus::kMalformed);
}

TEST(CkptContainer, AbsurdSectionCountIsMalformed) {
  // A section count in the millions cannot be genuine; it must be rejected
  // before any allocation, not treated as a truncated billion-entry walk.
  std::string bytes;
  bytes.append(kContainerMagic, sizeof(kContainerMagic));
  bytes::put_u32(bytes, kContainerVersion);
  bytes::put_u32(bytes, 0xFFFFFFFFu);
  std::vector<Section> sections;
  EXPECT_EQ(parse(bytes, sections), DecodeStatus::kMalformed);
}

TEST(CkptContainer, Crc32MatchesKnownVector) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
}

// --- typed checkpoint codec -------------------------------------------------

RunCheckpoint populated_checkpoint() {
  RunCheckpoint c;
  c.seed = 42;
  c.model_dim = 4;
  c.num_clients = 3;
  c.origin = 0;
  c.now = 123.5;
  c.round = 7;
  c.staleness_sum = 9.25;
  c.round_deadline_passed = true;
  c.dropout_draws = 11;
  c.global = {1.0f, -2.0f, 0.5f, 3.25f};
  c.strategy_state = std::string("opaque\x00state", 12);

  c.result.rounds = 7;
  c.result.total_updates = 21;
  c.result.model_uploads = 23;
  c.result.final_time = 123.5;
  c.result.mean_staleness = 0.4;
  c.result.final_weights = c.global;
  c.result.curve.push_back(AccuracyPoint{0.0, 0, 0.1, 2.3});
  c.result.curve.push_back(AccuracyPoint{60.0, 3, 0.5, 1.1});
  c.result.round_log.push_back(RoundStat{3, 60.0, 3, 0.33, 1});
  c.result.participation = {7, 8, 6};
  c.result.upload_wire_bytes = 4096;
  c.result.upload_raw_bytes = 8192;

  LocalUpdate u;
  u.client = 2;
  u.base_round = 6;
  u.num_samples = 15;
  u.epochs_completed = 2;
  u.arrival_time = 120.0;
  u.train_loss = 0.7;
  u.weights = {0.1f, 0.2f, 0.3f, 0.4f};
  c.buffer.push_back(u);

  SessionRecord s;
  s.client = 1;
  s.base_round = 6;
  s.epoch_ends = {118.0, 125.0};
  s.planned_epochs = 2;
  s.attempts = 1;
  s.notified = true;
  s.has_tx = true;
  s.tx_seq = 91;
  s.tx_time = 130.0;
  s.tx_kind = TxKind::kLost;
  s.tx_epochs = 2;
  s.has_deadline = true;
  s.deadline_seq = 92;
  s.deadline_time = 140.0;
  c.sessions.push_back(s);
  SessionRecord crashed;
  crashed.client = 0;
  crashed.base_round = 7;
  crashed.crashed = true;
  crashed.crash_time = 121.0;
  c.sessions.push_back(crashed);

  c.pending_notifies.push_back(PendingNotify{93, 2, 124.0});
  c.pending_round_deadlines.push_back(PendingRoundDeadline{94, 7, 150.0});
  c.bases.emplace(6, ModelVector{0.9f, -0.9f, 0.0f, 1.0f});
  c.residuals.emplace(1, std::vector<float>{0.01f, -0.02f, 0.0f, 0.03f});
  c.rtt_estimate = 0.25;
  c.next_session = 95;
  return c;
}

void expect_checkpoints_equal(const RunCheckpoint& a, const RunCheckpoint& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.model_dim, b.model_dim);
  EXPECT_EQ(a.num_clients, b.num_clients);
  EXPECT_EQ(a.origin, b.origin);
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.staleness_sum, b.staleness_sum);
  EXPECT_EQ(a.round_deadline_passed, b.round_deadline_passed);
  EXPECT_EQ(a.dropout_draws, b.dropout_draws);
  EXPECT_EQ(a.global, b.global);
  EXPECT_EQ(a.strategy_state, b.strategy_state);
  EXPECT_EQ(a.result.rounds, b.result.rounds);
  EXPECT_EQ(a.result.total_updates, b.result.total_updates);
  EXPECT_EQ(a.result.model_uploads, b.result.model_uploads);
  EXPECT_EQ(a.result.final_time, b.result.final_time);
  EXPECT_EQ(a.result.mean_staleness, b.result.mean_staleness);
  EXPECT_EQ(a.result.final_weights, b.result.final_weights);
  EXPECT_EQ(a.result.participation, b.result.participation);
  EXPECT_EQ(a.result.upload_wire_bytes, b.result.upload_wire_bytes);
  EXPECT_EQ(a.result.upload_raw_bytes, b.result.upload_raw_bytes);
  ASSERT_EQ(a.result.curve.size(), b.result.curve.size());
  for (std::size_t i = 0; i < a.result.curve.size(); ++i) {
    EXPECT_EQ(a.result.curve[i].time, b.result.curve[i].time);
    EXPECT_EQ(a.result.curve[i].round, b.result.curve[i].round);
    EXPECT_EQ(a.result.curve[i].accuracy, b.result.curve[i].accuracy);
    EXPECT_EQ(a.result.curve[i].loss, b.result.curve[i].loss);
  }
  ASSERT_EQ(a.result.round_log.size(), b.result.round_log.size());
  for (std::size_t i = 0; i < a.result.round_log.size(); ++i) {
    EXPECT_EQ(a.result.round_log[i].round, b.result.round_log[i].round);
    EXPECT_EQ(a.result.round_log[i].updates, b.result.round_log[i].updates);
  }
  ASSERT_EQ(a.buffer.size(), b.buffer.size());
  for (std::size_t i = 0; i < a.buffer.size(); ++i) {
    EXPECT_EQ(a.buffer[i].client, b.buffer[i].client);
    EXPECT_EQ(a.buffer[i].base_round, b.buffer[i].base_round);
    EXPECT_EQ(a.buffer[i].num_samples, b.buffer[i].num_samples);
    EXPECT_EQ(a.buffer[i].epochs_completed, b.buffer[i].epochs_completed);
    EXPECT_EQ(a.buffer[i].arrival_time, b.buffer[i].arrival_time);
    EXPECT_EQ(a.buffer[i].train_loss, b.buffer[i].train_loss);
    EXPECT_EQ(a.buffer[i].weights, b.buffer[i].weights);
  }
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    const SessionRecord& x = a.sessions[i];
    const SessionRecord& y = b.sessions[i];
    EXPECT_EQ(x.client, y.client);
    EXPECT_EQ(x.base_round, y.base_round);
    EXPECT_EQ(x.epoch_ends, y.epoch_ends);
    EXPECT_EQ(x.planned_epochs, y.planned_epochs);
    EXPECT_EQ(x.frozen_layers, y.frozen_layers);
    EXPECT_EQ(x.attempts, y.attempts);
    EXPECT_EQ(x.crash_time, y.crash_time);
    EXPECT_EQ(x.notified, y.notified);
    EXPECT_EQ(x.lost, y.lost);
    EXPECT_EQ(x.crashed, y.crashed);
    EXPECT_EQ(x.has_tx, y.has_tx);
    EXPECT_EQ(x.tx_seq, y.tx_seq);
    EXPECT_EQ(x.tx_time, y.tx_time);
    EXPECT_EQ(x.tx_kind, y.tx_kind);
    EXPECT_EQ(x.tx_epochs, y.tx_epochs);
    EXPECT_EQ(x.has_deadline, y.has_deadline);
    EXPECT_EQ(x.deadline_seq, y.deadline_seq);
    EXPECT_EQ(x.deadline_time, y.deadline_time);
  }
  ASSERT_EQ(a.pending_notifies.size(), b.pending_notifies.size());
  for (std::size_t i = 0; i < a.pending_notifies.size(); ++i) {
    EXPECT_EQ(a.pending_notifies[i].seq, b.pending_notifies[i].seq);
    EXPECT_EQ(a.pending_notifies[i].client, b.pending_notifies[i].client);
    EXPECT_EQ(a.pending_notifies[i].time, b.pending_notifies[i].time);
  }
  ASSERT_EQ(a.pending_round_deadlines.size(),
            b.pending_round_deadlines.size());
  for (std::size_t i = 0; i < a.pending_round_deadlines.size(); ++i) {
    EXPECT_EQ(a.pending_round_deadlines[i].seq,
              b.pending_round_deadlines[i].seq);
    EXPECT_EQ(a.pending_round_deadlines[i].armed_round,
              b.pending_round_deadlines[i].armed_round);
    EXPECT_EQ(a.pending_round_deadlines[i].time,
              b.pending_round_deadlines[i].time);
  }
  EXPECT_EQ(a.bases, b.bases);
  EXPECT_EQ(a.residuals, b.residuals);
  EXPECT_EQ(a.rtt_estimate, b.rtt_estimate);
  EXPECT_EQ(a.next_session, b.next_session);
}

TEST(CkptCheckpoint, RoundTripsEveryField) {
  const RunCheckpoint c = populated_checkpoint();
  const std::string bytes = encode_checkpoint(c);
  RunCheckpoint out;
  ASSERT_EQ(decode_checkpoint(bytes.data(), bytes.size(), out),
            DecodeStatus::kOk);
  expect_checkpoints_equal(c, out);
}

TEST(CkptCheckpoint, EncodingIsDeterministic) {
  const RunCheckpoint c = populated_checkpoint();
  EXPECT_EQ(encode_checkpoint(c), encode_checkpoint(populated_checkpoint()));
}

TEST(CkptCheckpoint, UnknownSectionIsSkipped) {
  // Forward compatibility: a future writer may append sections this decoder
  // has never heard of; it must decode what it knows and ignore the rest.
  const RunCheckpoint c = populated_checkpoint();
  std::vector<Section> sections;
  const std::string bytes = encode_checkpoint(c);
  ASSERT_EQ(parse(bytes, sections), DecodeStatus::kOk);
  ContainerWriter w;
  for (const Section& s : sections) w.add(s.id, s.payload);
  w.add(9999, "from the future");
  const std::string extended = w.finish();
  RunCheckpoint out;
  ASSERT_EQ(decode_checkpoint(extended.data(), extended.size(), out),
            DecodeStatus::kOk);
  expect_checkpoints_equal(c, out);
}

TEST(CkptCheckpoint, DuplicateSectionIsMalformed) {
  const std::string bytes = encode_checkpoint(populated_checkpoint());
  std::vector<Section> sections;
  ASSERT_EQ(parse(bytes, sections), DecodeStatus::kOk);
  ContainerWriter w;
  for (const Section& s : sections) w.add(s.id, s.payload);
  w.add(sections.front().id, sections.front().payload);
  const std::string doubled = w.finish();
  RunCheckpoint out;
  EXPECT_EQ(decode_checkpoint(doubled.data(), doubled.size(), out),
            DecodeStatus::kMalformed);
}

TEST(CkptCheckpoint, MissingRequiredSectionIsMalformed) {
  // A container that parses but lacks meta/global/result can never restore
  // a run; dropping any one of them must classify as malformed.
  const std::string bytes = encode_checkpoint(populated_checkpoint());
  std::vector<Section> sections;
  ASSERT_EQ(parse(bytes, sections), DecodeStatus::kOk);
  for (const std::uint32_t required : {1u, 2u, 3u}) {
    ContainerWriter w;
    for (const Section& s : sections) {
      if (s.id != required) w.add(s.id, s.payload);
    }
    const std::string partial = w.finish();
    RunCheckpoint out;
    EXPECT_EQ(decode_checkpoint(partial.data(), partial.size(), out),
              DecodeStatus::kMalformed)
        << "without section " << required;
  }
}

TEST(CkptCheckpoint, GarbledSectionPayloadIsMalformed) {
  // Rebuild the container with a corrupted sessions payload but a correct
  // CRC: the damage must be caught by the typed layer, not the checksum.
  const std::string bytes = encode_checkpoint(populated_checkpoint());
  std::vector<Section> sections;
  ASSERT_EQ(parse(bytes, sections), DecodeStatus::kOk);
  ContainerWriter w;
  for (const Section& s : sections) {
    std::string payload = s.payload;
    if (s.id == 6 && !payload.empty()) payload.resize(payload.size() / 2);
    w.add(s.id, std::move(payload));
  }
  const std::string garbled = w.finish();
  RunCheckpoint out;
  EXPECT_EQ(decode_checkpoint(garbled.data(), garbled.size(), out),
            DecodeStatus::kMalformed);
}

TEST(CkptCheckpoint, TruncationsOfRealCheckpointNeverFatal) {
  const std::string bytes = encode_checkpoint(populated_checkpoint());
  RunCheckpoint out;
  // Sampling stride keeps the quadratic scan cheap; include the last bytes
  // where the CRC itself is cut.
  for (std::size_t len = 0; len < bytes.size();
       len += (len > bytes.size() - 16 ? 1 : 37)) {
    const DecodeStatus s = decode_checkpoint(bytes.data(), len, out);
    EXPECT_EQ(s, DecodeStatus::kTruncated) << "prefix length " << len;
  }
}

TEST(CkptCheckpoint, RandomBytesNeverDecodeAndNeverThrow) {
  // Deterministic xorshift fuzz: whatever the bytes, decode must return a
  // classification — no exceptions, no crashes, and never a false kOk.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes(static_cast<std::size_t>(next() % 512), '\0');
    for (char& ch : bytes) ch = static_cast<char>(next() & 0xFF);
    // Half the trials start with valid magic so the fuzz reaches the body.
    if (trial % 2 == 0 && bytes.size() >= sizeof(kContainerMagic)) {
      std::memcpy(bytes.data(), kContainerMagic, sizeof(kContainerMagic));
    }
    RunCheckpoint out;
    const DecodeStatus s =
        decode_checkpoint(bytes.data(), bytes.size(), out);
    EXPECT_NE(s, DecodeStatus::kOk);
  }
}

TEST(CkptCheckpoint, MutatedRealCheckpointNeverCrashes) {
  // Flip bytes all over a genuine checkpoint: every mutation must classify
  // (kOk is conceivable only if the mutation misses the CRC range, which a
  // single in-range flip cannot).
  const std::string original = encode_checkpoint(populated_checkpoint());
  for (std::size_t pos = 0; pos < original.size(); pos += 13) {
    std::string bytes = original;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0xA5);
    RunCheckpoint out;
    const DecodeStatus s =
        decode_checkpoint(bytes.data(), bytes.size(), out);
    EXPECT_NE(s, DecodeStatus::kOk) << "flip at " << pos;
  }
}

}  // namespace
}  // namespace seafl::ckpt
