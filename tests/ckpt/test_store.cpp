// Durable checkpoint files (DESIGN.md §15): atomic write-then-rename,
// keep-last-N retention, newest-checkpoint discovery, and the torn-file /
// foreign-file tolerance a restarted server depends on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/store.h"
#include "common/error.h"

namespace seafl::ckpt {
namespace {

namespace fs = std::filesystem;

RunCheckpoint tiny_checkpoint(std::uint64_t round) {
  RunCheckpoint c;
  c.seed = 42;
  c.model_dim = 3;
  c.num_clients = 2;
  c.round = round;
  c.now = 10.0 * static_cast<double>(round);
  c.global = {1.0f, 2.0f, 3.0f};
  c.result.rounds = round;
  c.result.final_weights = c.global;
  return c;
}

struct CkptStore : ::testing::Test {
  std::string dir;

  void SetUp() override {
    dir = (fs::temp_directory_path() /
           ("seafl_store_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name())))
              .string();
    fs::remove_all(dir);
  }
  void TearDown() override { fs::remove_all(dir); }
};

TEST_F(CkptStore, PathNaming) {
  EXPECT_EQ(checkpoint_path("d", 12), "d/ckpt_12.seaflckpt");
}

TEST_F(CkptStore, MissingDirectoryListsEmpty) {
  EXPECT_TRUE(list_checkpoint_rounds(dir).empty());
  EXPECT_FALSE(latest_checkpoint(dir).has_value());
}

TEST_F(CkptStore, WriteThenLoadRoundTrips) {
  write_retained(dir, tiny_checkpoint(5), /*keep=*/3);
  const auto latest = latest_checkpoint(dir);
  ASSERT_TRUE(latest.has_value());
  RunCheckpoint out;
  ASSERT_EQ(load_checkpoint_file(*latest, out), DecodeStatus::kOk);
  EXPECT_EQ(out.round, 5u);
  EXPECT_EQ(out.seed, 42u);
  EXPECT_EQ(out.global, (ModelVector{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(out.result.rounds, 5u);
}

TEST_F(CkptStore, RetentionKeepsOnlyNewestRounds) {
  for (std::uint64_t r = 1; r <= 5; ++r) {
    write_retained(dir, tiny_checkpoint(r), /*keep=*/3);
  }
  EXPECT_EQ(list_checkpoint_rounds(dir),
            (std::vector<std::uint64_t>{3, 4, 5}));
}

TEST_F(CkptStore, LatestOrdersRoundsNumericallyNotLexically) {
  // "ckpt_9" sorts after "ckpt_10" as a string; discovery must not.
  write_retained(dir, tiny_checkpoint(9), /*keep=*/10);
  write_retained(dir, tiny_checkpoint(10), /*keep=*/10);
  EXPECT_EQ(list_checkpoint_rounds(dir),
            (std::vector<std::uint64_t>{9, 10}));
  EXPECT_EQ(*latest_checkpoint(dir), checkpoint_path(dir, 10));
}

TEST_F(CkptStore, ForeignAndTempFilesAreIgnored) {
  write_retained(dir, tiny_checkpoint(2), /*keep=*/3);
  for (const char* name :
       {"notes.txt", "ckpt_x.seaflckpt", "ckpt_.seaflckpt",
        "ckpt_3.seaflckpt.tmp.123", "ckpt_4.other"}) {
    std::ofstream(dir + "/" + name) << "junk";
  }
  EXPECT_EQ(list_checkpoint_rounds(dir), (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(*latest_checkpoint(dir), checkpoint_path(dir, 2));
}

TEST_F(CkptStore, NoTempFileSurvivesAWrite) {
  write_retained(dir, tiny_checkpoint(1), /*keep=*/3);
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension().string(), ".seaflckpt")
        << entry.path();
  }
}

TEST_F(CkptStore, TornFileReadsAsTruncatedAndOlderCheckpointSurvives) {
  // Simulate a crash mid-write of round 4 having somehow hit the final
  // name (e.g. a copy tool bypassed the tmp+rename discipline): the loader
  // reports retryable truncation and the previous round still loads.
  write_retained(dir, tiny_checkpoint(3), /*keep=*/3);
  const std::string full = encode_checkpoint(tiny_checkpoint(4));
  std::ofstream(checkpoint_path(dir, 4), std::ios::binary)
      << full.substr(0, full.size() / 2);

  RunCheckpoint out;
  const DecodeStatus s = load_checkpoint_file(checkpoint_path(dir, 4), out);
  EXPECT_EQ(s, DecodeStatus::kTruncated);
  EXPECT_FALSE(is_fatal(s));
  ASSERT_EQ(load_checkpoint_file(checkpoint_path(dir, 3), out),
            DecodeStatus::kOk);
  EXPECT_EQ(out.round, 3u);
}

TEST_F(CkptStore, MissingFileReadsAsTruncated) {
  RunCheckpoint out;
  EXPECT_EQ(load_checkpoint_file(dir + "/ckpt_7.seaflckpt", out),
            DecodeStatus::kTruncated);
}

TEST_F(CkptStore, ZeroRetentionIsRejected) {
  EXPECT_THROW(write_retained(dir, tiny_checkpoint(1), /*keep=*/0), Error);
}

TEST_F(CkptStore, RewritingARoundReplacesItsFile) {
  write_retained(dir, tiny_checkpoint(5), /*keep=*/3);
  RunCheckpoint changed = tiny_checkpoint(5);
  changed.global = {9.0f, 9.0f, 9.0f};
  changed.result.final_weights = changed.global;
  write_retained(dir, changed, /*keep=*/3);
  EXPECT_EQ(list_checkpoint_rounds(dir), (std::vector<std::uint64_t>{5}));
  RunCheckpoint out;
  ASSERT_EQ(load_checkpoint_file(checkpoint_path(dir, 5), out),
            DecodeStatus::kOk);
  EXPECT_EQ(out.global, changed.global);
}

}  // namespace
}  // namespace seafl::ckpt
