#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "tensor/ops.h"

namespace seafl {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

TEST(OpsTest, AddInplace) {
  std::vector<float> y{1, 2, 3};
  std::vector<float> x{10, 20, 30};
  add_inplace(y, x);
  EXPECT_EQ(y, (std::vector<float>{11, 22, 33}));
}

TEST(OpsTest, SubInplace) {
  std::vector<float> y{10, 20, 30};
  std::vector<float> x{1, 2, 3};
  sub_inplace(y, x);
  EXPECT_EQ(y, (std::vector<float>{9, 18, 27}));
}

TEST(OpsTest, ScaleInplace) {
  std::vector<float> y{1, -2, 4};
  scale_inplace(y, 0.5f);
  EXPECT_EQ(y, (std::vector<float>{0.5f, -1.0f, 2.0f}));
}

TEST(OpsTest, Axpy) {
  std::vector<float> y{1, 1, 1};
  std::vector<float> x{1, 2, 3};
  axpy(y, 2.0f, x);
  EXPECT_EQ(y, (std::vector<float>{3, 5, 7}));
}

TEST(OpsTest, Axpby) {
  std::vector<float> y{10, 10};
  std::vector<float> x{2, 4};
  axpby(y, 0.5f, x, 0.1f);  // y = 0.5 x + 0.1 y
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
}

TEST(OpsTest, AxpbyImplementsServerMixing) {
  // Eq. 8: w = (1 - theta) w + theta w_new with theta = 0.8.
  std::vector<float> global{1.0f, 2.0f};
  std::vector<float> fresh{3.0f, 6.0f};
  axpby(global, 0.8f, fresh, 0.2f);
  EXPECT_FLOAT_EQ(global[0], 0.2f * 1.0f + 0.8f * 3.0f);
  EXPECT_FLOAT_EQ(global[1], 0.2f * 2.0f + 0.8f * 6.0f);
}

TEST(OpsTest, SizeMismatchThrows) {
  std::vector<float> y{1, 2};
  std::vector<float> x{1};
  EXPECT_THROW(add_inplace(y, x), Error);
  EXPECT_THROW(axpy(y, 1.0f, x), Error);
  EXPECT_THROW(dot(y, x), Error);
}

TEST(OpsTest, ReluInplace) {
  std::vector<float> y{-1, 0, 2, -3.5f};
  relu_inplace(y);
  EXPECT_EQ(y, (std::vector<float>{0, 0, 2, 0}));
}

TEST(OpsTest, ReluBackwardMasks) {
  std::vector<float> dy{1, 1, 1, 1};
  std::vector<float> x{-1, 0, 2, 5};
  relu_backward_inplace(dy, x);
  EXPECT_EQ(dy, (std::vector<float>{0, 0, 1, 1}));
}

TEST(OpsTest, DotAndNorm) {
  std::vector<float> a{3, 4};
  std::vector<float> b{1, 2};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(l2_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(sum(a), 7.0);
}

TEST(OpsTest, MaxAndArgmax) {
  std::vector<float> a{1, 5, 3, 5};
  EXPECT_EQ(max_value(a), 5.0f);
  EXPECT_EQ(argmax(a), 1u);  // ties break low
  EXPECT_THROW(max_value(std::span<const float>{}), Error);
  EXPECT_THROW(argmax(std::span<const float>{}), Error);
}

TEST(CosineTest, ParallelVectors) {
  std::vector<float> a{1, 2, 3};
  std::vector<float> b{2, 4, 6};
  EXPECT_NEAR(cosine_similarity(a, b), 1.0, 1e-6);
}

TEST(CosineTest, AntiparallelVectors) {
  std::vector<float> a{1, 0};
  std::vector<float> b{-2, 0};
  EXPECT_NEAR(cosine_similarity(a, b), -1.0, 1e-6);
}

TEST(CosineTest, OrthogonalVectors) {
  std::vector<float> a{1, 0};
  std::vector<float> b{0, 5};
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, 1e-9);
}

TEST(CosineTest, ZeroVectorYieldsZero) {
  std::vector<float> a{0, 0, 0};
  std::vector<float> b{1, 2, 3};
  EXPECT_DOUBLE_EQ(cosine_similarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(cosine_similarity(b, a), 0.0);
}

TEST(CosineTest, AlwaysClampedToUnitInterval) {
  // Large near-parallel vectors can produce |cos| slightly above 1 in
  // floating point; the implementation clamps.
  const auto a = random_vec(10000, 3);
  const double c = cosine_similarity(a, a);
  EXPECT_LE(c, 1.0);
  EXPECT_NEAR(c, 1.0, 1e-9);
}

TEST(SoftmaxTest, RowsSumToOne) {
  std::vector<float> in{1, 2, 3, -1, 0, 1};
  std::vector<float> out(6);
  softmax_rows(in, out, 2, 3);
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0, 1e-6);
  EXPECT_NEAR(out[3] + out[4] + out[5], 1.0, 1e-6);
  EXPECT_GT(out[2], out[1]);
  EXPECT_GT(out[1], out[0]);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  std::vector<float> in{1000, 1001, 999};
  std::vector<float> out(3);
  softmax_rows(in, out, 1, 3);
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0, 1e-6);
  EXPECT_FALSE(std::isnan(out[0]));
  EXPECT_GT(out[1], out[0]);
}

TEST(SoftmaxTest, MayAliasInput) {
  std::vector<float> buf{0, 0, 0};
  softmax_rows(buf, buf, 1, 3);
  for (float v : buf) EXPECT_NEAR(v, 1.0 / 3.0, 1e-6);
}

// Parameterized across the serial/parallel kernel threshold (1<<15): results
// must be identical regardless of the execution path.
class OpsSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OpsSizeTest, AxpyMatchesSerialReference) {
  const std::size_t n = GetParam();
  auto y = random_vec(n, 1);
  const auto x = random_vec(n, 2);
  auto expected = y;
  for (std::size_t i = 0; i < n; ++i) expected[i] += 1.5f * x[i];
  axpy(y, 1.5f, x);
  for (std::size_t i = 0; i < n; ++i) ASSERT_FLOAT_EQ(y[i], expected[i]);
}

TEST_P(OpsSizeTest, DotMatchesSerialReference) {
  const std::size_t n = GetParam();
  const auto a = random_vec(n, 3);
  const auto b = random_vec(n, 4);
  double expected = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    expected += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  EXPECT_NEAR(dot(a, b), expected, std::abs(expected) * 1e-9 + 1e-9);
}

TEST_P(OpsSizeTest, ScaleMatchesSerialReference) {
  const std::size_t n = GetParam();
  auto y = random_vec(n, 5);
  auto expected = y;
  for (auto& v : expected) v *= -0.25f;
  scale_inplace(y, -0.25f);
  for (std::size_t i = 0; i < n; ++i) ASSERT_FLOAT_EQ(y[i], expected[i]);
}

INSTANTIATE_TEST_SUITE_P(AcrossParallelThreshold, OpsSizeTest,
                         ::testing::Values(1, 7, 1024, (1u << 15) - 1,
                                           (1u << 15) + 1, 1u << 17));

}  // namespace
}  // namespace seafl
