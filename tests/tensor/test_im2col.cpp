#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"

namespace seafl {
namespace {

TEST(ConvGeomTest, OutputDimensions) {
  ConvGeom g;
  g.channels = 3;
  g.height = 8;
  g.width = 8;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 1;
  g.pad = 1;
  EXPECT_EQ(g.out_h(), 8u);
  EXPECT_EQ(g.out_w(), 8u);
  EXPECT_EQ(g.col_rows(), 27u);
  EXPECT_EQ(g.col_cols(), 64u);

  g.pad = 0;
  EXPECT_EQ(g.out_h(), 6u);
  g.stride = 2;
  EXPECT_EQ(g.out_h(), 3u);
}

TEST(Im2ColTest, IdentityKernelNoPad) {
  // 1x1 kernel, stride 1, no padding: cols == image.
  ConvGeom g;
  g.channels = 1;
  g.height = 2;
  g.width = 3;
  g.kernel_h = 1;
  g.kernel_w = 1;
  std::vector<float> image{1, 2, 3, 4, 5, 6};
  std::vector<float> cols(g.col_rows() * g.col_cols());
  im2col(g, image, cols);
  EXPECT_EQ(cols, image);
}

TEST(Im2ColTest, KnownSmallCase) {
  // 2x2 image, 2x2 kernel, stride 1, no pad -> a single column with all four
  // pixels in (kh, kw) order.
  ConvGeom g;
  g.channels = 1;
  g.height = 2;
  g.width = 2;
  g.kernel_h = 2;
  g.kernel_w = 2;
  std::vector<float> image{1, 2, 3, 4};
  std::vector<float> cols(4);
  im2col(g, image, cols);
  EXPECT_EQ(cols, (std::vector<float>{1, 2, 3, 4}));
}

TEST(Im2ColTest, PaddingContributesZeros) {
  // 1x1 image, 3x3 kernel, pad 1: the single output position sees the pixel
  // at the kernel center and zeros elsewhere.
  ConvGeom g;
  g.channels = 1;
  g.height = 1;
  g.width = 1;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.pad = 1;
  std::vector<float> image{7};
  std::vector<float> cols(9);
  im2col(g, image, cols);
  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_EQ(cols[i], i == 4 ? 7.0f : 0.0f) << "at " << i;
}

TEST(Im2ColTest, MultiChannelRowLayout) {
  // Rows must be grouped channel-major: c0 kernel positions then c1.
  ConvGeom g;
  g.channels = 2;
  g.height = 1;
  g.width = 2;
  g.kernel_h = 1;
  g.kernel_w = 1;
  std::vector<float> image{1, 2, 10, 20};  // c0: [1,2], c1: [10,20]
  std::vector<float> cols(2 * 2);
  im2col(g, image, cols);
  EXPECT_EQ(cols, (std::vector<float>{1, 2, 10, 20}));
}

TEST(Im2ColTest, UndersizedBuffersThrow) {
  ConvGeom g;
  g.channels = 1;
  g.height = 4;
  g.width = 4;
  g.kernel_h = 2;
  g.kernel_w = 2;
  std::vector<float> image(16), small(3);
  std::vector<float> cols(g.col_rows() * g.col_cols());
  EXPECT_THROW(im2col(g, small, cols), Error);
  EXPECT_THROW(im2col(g, image, small), Error);
  EXPECT_THROW(col2im(g, small, image), Error);
}

// Adjointness property: <im2col(x), y> == <x, col2im(y)> for all x, y.
// This is the defining relation between the forward lowering and its
// gradient scatter, and catches any indexing mismatch between the two.
class Im2ColAdjointTest : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(Im2ColAdjointTest, ColImAreAdjoint) {
  const ConvGeom g = GetParam();
  const std::size_t img_n = g.channels * g.height * g.width;
  const std::size_t col_n = g.col_rows() * g.col_cols();

  Rng rng(123);
  std::vector<float> x(img_n), y(col_n);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());

  std::vector<float> cols(col_n);
  im2col(g, x, cols);
  std::vector<float> back(img_n, 0.0f);
  col2im(g, y, back);

  EXPECT_NEAR(dot(cols, y), dot(x, back), 1e-3);
}

namespace {
ConvGeom make_geom(std::size_t c, std::size_t h, std::size_t w, std::size_t k,
                   std::size_t s, std::size_t p) {
  ConvGeom g;
  g.channels = c;
  g.height = h;
  g.width = w;
  g.kernel_h = k;
  g.kernel_w = k;
  g.stride = s;
  g.pad = p;
  return g;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColAdjointTest,
    ::testing::Values(make_geom(1, 4, 4, 3, 1, 0),
                      make_geom(1, 4, 4, 3, 1, 1),
                      make_geom(3, 8, 8, 3, 1, 1),
                      make_geom(2, 6, 6, 5, 1, 2),
                      make_geom(4, 7, 5, 3, 2, 1),
                      make_geom(1, 12, 12, 2, 2, 0),
                      make_geom(3, 5, 5, 5, 1, 0)));

TEST(Col2ImTest, AccumulatesOverlaps) {
  // 3x3 image, 2x2 kernel, stride 1: center pixel is covered by 4 windows.
  ConvGeom g;
  g.channels = 1;
  g.height = 3;
  g.width = 3;
  g.kernel_h = 2;
  g.kernel_w = 2;
  std::vector<float> cols(g.col_rows() * g.col_cols(), 1.0f);
  std::vector<float> img(9, 0.0f);
  col2im(g, cols, img);
  // Coverage counts: corners 1, edges 2, center 4.
  EXPECT_EQ(img, (std::vector<float>{1, 2, 1, 2, 4, 2, 1, 2, 1}));
}

}  // namespace
}  // namespace seafl
