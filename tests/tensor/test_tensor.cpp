#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace seafl {
namespace {

TEST(ShapeTest, NumelOfShapes) {
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_numel({5}), 5u);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({7, 0}), 0u);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.rank(), 1u);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.numel(), 12u);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.dim(1), 4u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ValueConstructorChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(TensorTest, VectorFactory) {
  Tensor t = Tensor::vector({1.0f, 2.0f, 3.0f});
  ASSERT_EQ(t.numel(), 3u);
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(t[1], 2.0f);
}

TEST(TensorTest, TwoDimAccess) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t[5], 9.0f);
}

TEST(TensorTest, FillSetsAllElements) {
  Tensor t({4, 4});
  t.fill(2.5f);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorTest, ReshapePreservesDataAndChecksNumel) {
  Tensor t({2, 6}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  t.reshape({3, 4});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.at(1, 1), 5.0f);  // row-major preserved
  EXPECT_THROW(t.reshape({5, 5}), Error);
}

TEST(TensorTest, CopyHasValueSemantics) {
  Tensor a({2}, {1, 2});
  Tensor b = a;
  b[0] = 99.0f;
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 99.0f);
}

TEST(TensorTest, EqualsComparesShapeAndData) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {1, 2, 3, 4});
  Tensor c({4}, {1, 2, 3, 4});
  Tensor d({2, 2}, {1, 2, 3, 5});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));  // same data, different shape
  EXPECT_FALSE(a.equals(d));
}

TEST(TensorTest, FillNormalIsSeedDeterministic) {
  Rng rng1(5), rng2(5);
  Tensor a({100});
  Tensor b({100});
  a.fill_normal(rng1, 0.0f, 1.0f);
  b.fill_normal(rng2, 0.0f, 1.0f);
  EXPECT_TRUE(a.equals(b));
}

TEST(TensorTest, FillNormalHasRequestedMoments) {
  Rng rng(7);
  Tensor t({20000});
  t.fill_normal(rng, 3.0f, 0.5f);
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sq += (t[i] - 3.0) * (t[i] - 3.0);
  }
  EXPECT_NEAR(sum / t.numel(), 3.0, 0.02);
  EXPECT_NEAR(std::sqrt(sq / t.numel()), 0.5, 0.02);
}

TEST(TensorTest, FillUniformInRange) {
  Rng rng(9);
  Tensor t({1000});
  t.fill_uniform(rng, -1.0f, 2.0f);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LT(t[i], 2.0f);
  }
}

TEST(TensorTest, ZerosLikeMatchesShape) {
  Tensor a({3, 5});
  a.fill(1.0f);
  Tensor z = Tensor::zeros_like(a);
  EXPECT_EQ(z.shape(), a.shape());
  for (std::size_t i = 0; i < z.numel(); ++i) EXPECT_EQ(z[i], 0.0f);
}

TEST(TensorTest, SpanViewsShareStorage) {
  Tensor t({4});
  t.span()[2] = 7.0f;
  EXPECT_EQ(t[2], 7.0f);
  const Tensor& ct = t;
  EXPECT_EQ(ct.span()[2], 7.0f);
}

}  // namespace
}  // namespace seafl
