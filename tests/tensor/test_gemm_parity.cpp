// Parity and determinism tests for the tiled GEMM backend (DESIGN.md §11):
//  * tiled vs reference backend across all transpose cases, sizes that
//    exercise every ragged register-tile edge, and alpha/beta combinations —
//    bitwise-equal wherever the compiler cannot contract mul+add into FMA
//    (the explicit FP-reassociation rule the contract allows);
//  * fused epilogue (row/col bias, ReLU) parity against a post-pass;
//  * bitwise invariance to how row panels are partitioned across workers,
//    and to running the kernels serially vs on the pool.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/microkernel.h"

namespace seafl {
namespace {

// Under FMA contraction (-march=native builds) the two backends may round
// differently; the contract then only promises near-equality.
#if defined(__FMA__)
constexpr bool kExpectBitwise = false;
#else
constexpr bool kExpectBitwise = true;
#endif

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

void expect_parity(const std::vector<float>& tiled,
                   const std::vector<float>& ref, const char* what) {
  ASSERT_EQ(tiled.size(), ref.size());
  if (kExpectBitwise) {
    ASSERT_EQ(0,
              std::memcmp(tiled.data(), ref.data(),
                          tiled.size() * sizeof(float)))
        << what << ": backends differ bitwise";
  } else {
    for (std::size_t i = 0; i < tiled.size(); ++i)
      ASSERT_NEAR(tiled[i], ref[i], 1e-4f) << what << " at " << i;
  }
}

void run_case(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
              float alpha, float beta) {
  SCOPED_TRACE(::testing::Message()
               << "m=" << m << " n=" << n << " k=" << k << " alpha=" << alpha
               << " beta=" << beta << " ta=" << (ta == Trans::kYes)
               << " tb=" << (tb == Trans::kYes));
  const auto a = random_vec(m * k, 11 + m);
  const auto b = random_vec(k * n, 23 + n);
  const auto c0 = random_vec(m * n, 37 + k);

  std::vector<float> c_ref = c0;
  {
    GemmBackendScope scope(GemmBackend::kReference);
    gemm(ta, tb, m, n, k, alpha, a, b, beta, c_ref);
  }
  std::vector<float> c_tiled = c0;
  {
    GemmBackendScope scope(GemmBackend::kTiled);
    gemm(ta, tb, m, n, k, alpha, a, b, beta, c_tiled);
  }
  expect_parity(c_tiled, c_ref, "gemm");
}

class GemmParityGrid
    : public ::testing::TestWithParam<std::pair<Trans, Trans>> {};

TEST_P(GemmParityGrid, BackendsAgreeAcrossSizesAndScalars) {
  const auto [ta, tb] = GetParam();
  // Sizes straddle every register-tile boundary: 1 < kMR, 3/7 ragged,
  // 17 crosses two kNR panels raggedly, 64/129 exercise multi-panel paths.
  const std::size_t sizes[] = {1, 3, 7, 17, 64, 129};
  const float scalars[] = {0.0f, 1.0f, 0.5f};
  for (std::size_t m : sizes)
    for (std::size_t n : sizes)
      for (std::size_t k : sizes)
        for (float alpha : scalars)
          for (float beta : scalars) run_case(ta, tb, m, n, k, alpha, beta);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposes, GemmParityGrid,
    ::testing::Values(std::pair{Trans::kNo, Trans::kNo},
                      std::pair{Trans::kNo, Trans::kYes},
                      std::pair{Trans::kYes, Trans::kNo},
                      std::pair{Trans::kYes, Trans::kYes}),
    [](const auto& pinfo) {
      return std::string(pinfo.param.first == Trans::kYes ? "T" : "N") +
             (pinfo.param.second == Trans::kYes ? "T" : "N");
    });

TEST(GemmParityTest, DeepKCrossesKcBlockBoundary) {
  // k = 311 > kKC = 256: the accumulator tile round-trips through memory
  // between K panels; the addition chain must survive the spill.
  static_assert(detail::kKC == 256);
  for (Trans ta : {Trans::kNo, Trans::kYes})
    for (Trans tb : {Trans::kNo, Trans::kYes})
      run_case(ta, tb, 9, 21, 311, 1.0f, 0.5f);
}

TEST(GemmParityTest, FusedEpilogueMatchesPostPass) {
  const std::size_t m = 33, n = 50, k = 27;
  const auto a = random_vec(m * k, 5);
  const auto b = random_vec(k * n, 6);
  const auto row_bias = random_vec(m, 7);
  const auto col_bias = random_vec(n, 8);

  for (int relu = 0; relu < 2; ++relu) {
    GemmEpilogue epi;
    epi.row_bias = row_bias.data();
    epi.col_bias = col_bias.data();
    epi.relu = relu != 0;

    std::vector<float> c_ref(m * n, 0.0f);
    {
      GemmBackendScope scope(GemmBackend::kReference);
      gemm_ex(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f, c_ref, epi);
    }
    std::vector<float> c_tiled(m * n, 0.0f);
    {
      GemmBackendScope scope(GemmBackend::kTiled);
      gemm_ex(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f, c_tiled, epi);
    }
    expect_parity(c_tiled, c_ref, relu ? "epilogue+relu" : "epilogue");

    // The fusion must reproduce the former separate passes exactly: GEMM,
    // then bias sweeps in the same add order, then the ReLU clamp. This
    // holds bitwise on every target — it is the same backend both times.
    std::vector<float> c_post(m * n, 0.0f);
    gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f, c_post);
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t j = 0; j < n; ++j) {
        float& v = c_post[r * n + j];
        v += row_bias[r];
        v += col_bias[j];
        if (epi.relu) v = v > 0.0f ? v : 0.0f;
      }
    std::vector<float> c_fused(m * n, 0.0f);
    gemm_ex(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f, c_fused, epi);
    ASSERT_EQ(0, std::memcmp(c_fused.data(), c_post.data(),
                             c_fused.size() * sizeof(float)));
  }
}

TEST(GemmParityTest, ZeroAlphaBetaOnePreservesCBitwise) {
  // alpha = 0, beta = 1: 0*acc + 1*C must hand C back bit-for-bit on both
  // backends (finite operands; acc is still computed but contributes +0).
  const std::size_t m = 5, n = 9, k = 4;
  const auto a = random_vec(m * k, 1);
  const auto b = random_vec(k * n, 2);
  const auto c0 = random_vec(m * n, 3);
  for (GemmBackend be : {GemmBackend::kReference, GemmBackend::kTiled}) {
    GemmBackendScope scope(be);
    std::vector<float> c = c0;
    gemm(Trans::kNo, Trans::kNo, m, n, k, 0.0f, a, b, 1.0f, c);
    ASSERT_EQ(0, std::memcmp(c.data(), c0.data(), c.size() * sizeof(float)));
  }
}

// ---------------------------------------------------------------------------
// Thread-count / partition invariance.
//
// The process-wide pool cannot be resized once built, so worker-count
// invariance is proven through detail::gemm_tiled_partitioned, which runs
// exactly the per-task function the pool dispatches but at explicit panel
// splits: one part (1 worker), two parts (2 workers), eight parts (8
// workers). All partitions and the production entry point must agree
// bitwise — this holds on every target, FMA or not, because every variant
// runs the same microkernel code on the same panels.

std::vector<float> run_partitioned(std::size_t m, std::size_t n,
                                   std::size_t k, const std::vector<float>& a,
                                   const std::vector<float>& b,
                                   const std::vector<float>& c0,
                                   std::span<const std::size_t> splits) {
  std::vector<float> c = c0;
  detail::gemm_tiled_partitioned(Trans::kNo, Trans::kYes, m, n, k, 1.0f,
                                 a.data(), b.data(), 0.5f, c.data(),
                                 GemmEpilogue{}, splits);
  return c;
}

TEST(GemmParityTest, BitwiseInvariantToPanelPartition) {
  const std::size_t m = 61, n = 45, k = 70;  // 16 row panels, ragged edges
  const auto a = random_vec(m * k, 41);
  const auto b = random_vec(n * k, 42);  // B is n x k for Trans::kYes
  const auto c0 = random_vec(m * n, 43);
  const std::size_t panels = (m + detail::kMR - 1) / detail::kMR;

  const auto one_worker = run_partitioned(m, n, k, a, b, c0, {});
  const std::vector<std::size_t> two{panels / 2};
  std::vector<std::size_t> eight;
  for (std::size_t w = 1; w < 8; ++w) eight.push_back(w * panels / 8);

  const auto two_workers = run_partitioned(m, n, k, a, b, c0, two);
  const auto eight_workers = run_partitioned(m, n, k, a, b, c0, eight);

  std::vector<float> production = c0;
  {
    GemmBackendScope scope(GemmBackend::kTiled);
    gemm(Trans::kNo, Trans::kYes, m, n, k, 1.0f, a, b, 0.5f, production);
  }

  const auto bits_equal = [](const std::vector<float>& x,
                             const std::vector<float>& y) {
    return std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0;
  };
  EXPECT_TRUE(bits_equal(one_worker, two_workers));
  EXPECT_TRUE(bits_equal(one_worker, eight_workers));
  EXPECT_TRUE(bits_equal(one_worker, production));
}

TEST(GemmParityTest, SerialScopeMatchesPooledExecution) {
  // Large enough that the pooled path actually parallelizes.
  const std::size_t m = 96, n = 80, k = 64;
  const auto a = random_vec(m * k, 51);
  const auto b = random_vec(k * n, 52);

  for (GemmBackend be : {GemmBackend::kReference, GemmBackend::kTiled}) {
    GemmBackendScope backend(be);
    std::vector<float> pooled(m * n, 0.0f);
    gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f, pooled);
    std::vector<float> serial(m * n, 0.0f);
    {
      SerialKernelScope scope;
      gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f, serial);
    }
    ASSERT_EQ(0, std::memcmp(pooled.data(), serial.data(),
                             pooled.size() * sizeof(float)))
        << "backend " << static_cast<int>(be);
  }
}

}  // namespace
}  // namespace seafl
