// Randomized differential testing of the blocked GEMM against a naive
// reference across random shapes, transposes and scalars.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "tensor/gemm.h"

namespace seafl {
namespace {

class GemmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GemmFuzz, RandomShapesMatchReference) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 40));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 40));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 40));
    const Trans ta = rng.bernoulli(0.5) ? Trans::kYes : Trans::kNo;
    const Trans tb = rng.bernoulli(0.5) ? Trans::kYes : Trans::kNo;
    const float alpha = static_cast<float>(rng.uniform(-2.0, 2.0));
    const float beta =
        rng.bernoulli(0.3) ? 0.0f : static_cast<float>(rng.uniform(-1.0, 1.0));

    std::vector<float> a(m * k), b(k * n), c(m * n);
    for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : c) v = static_cast<float>(rng.uniform(-1.0, 1.0));

    // Naive reference in double precision.
    std::vector<float> expected = c;
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p) {
          const float av = ta == Trans::kNo ? a[r * k + p] : a[p * m + r];
          const float bv = tb == Trans::kNo ? b[p * n + j] : b[j * k + p];
          acc += static_cast<double>(av) * bv;
        }
        expected[r * n + j] = static_cast<float>(
            alpha * acc + static_cast<double>(beta) * expected[r * n + j]);
      }
    }

    std::vector<float> actual = c;
    gemm(ta, tb, m, n, k, alpha, a, b, beta, actual);
    for (std::size_t i = 0; i < actual.size(); ++i) {
      ASSERT_NEAR(actual[i], expected[i], 1e-3f)
          << "trial " << trial << " m=" << m << " n=" << n << " k=" << k
          << " ta=" << (ta == Trans::kYes) << " tb=" << (tb == Trans::kYes)
          << " i=" << i;
    }

    // Differential check between the two production backends: identical
    // addition chains, so bitwise-equal on non-FMA targets (DESIGN.md §11).
    std::vector<float> ref = c;
    {
      GemmBackendScope scope(GemmBackend::kReference);
      gemm(ta, tb, m, n, k, alpha, a, b, beta, ref);
    }
#if !defined(__FMA__)
    ASSERT_EQ(0, std::memcmp(actual.data(), ref.data(),
                             actual.size() * sizeof(float)))
        << "trial " << trial << " m=" << m << " n=" << n << " k=" << k;
#else
    for (std::size_t i = 0; i < actual.size(); ++i)
      ASSERT_NEAR(actual[i], ref[i], 1e-4f) << "trial " << trial;
#endif
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmFuzz,
                         ::testing::Values(1, 7, 42, 99, 1234, 5678));

}  // namespace
}  // namespace seafl
