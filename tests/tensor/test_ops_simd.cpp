// Scalar-vs-SIMD parity for the runtime-dispatched vector kernels
// (DESIGN.md §17). Both kernel tables implement the same lane-strided
// partial-sum contract, so on hosts where the compiler does not contract
// mul+add into FMA the backends must agree *bitwise* for every kernel, at
// any size, span offset (alignment), and thread count. The grid below
// straddles the SIMD vector width, the reduction block size (2^13), and the
// parallel threshold (2^15), at several misaligned offsets.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace seafl {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

constexpr std::size_t kSizes[] = {1,
                                  5,
                                  8,
                                  9,
                                  17,
                                  1000,
                                  (std::size_t{1} << 13) + 3,
                                  (std::size_t{1} << 15) - 1,
                                  (std::size_t{1} << 15) + 1,
                                  std::size_t{1} << 17};
constexpr std::size_t kOffsets[] = {0, 1, 3};

TEST(VectorBackendTest, ScopeSetsAndRestores) {
  const VectorBackend before = vector_backend();
  {
    VectorBackendScope scalar(VectorBackend::kScalar);
    EXPECT_EQ(vector_backend(), VectorBackend::kScalar);
    EXPECT_STREQ(vector_backend_name(), "scalar");
    {
      VectorBackendScope simd(VectorBackend::kSimd);
      EXPECT_EQ(vector_backend(), VectorBackend::kSimd);
    }
    EXPECT_EQ(vector_backend(), VectorBackend::kScalar);
  }
  EXPECT_EQ(vector_backend(), before);
}

TEST(VectorBackendTest, SimdNameMatchesAvailability) {
  VectorBackendScope scope(VectorBackend::kSimd);
  if (simd_vector_available()) {
    EXPECT_STREQ(vector_backend_name(), "avx2");
  } else {
    // kSimd on a host without a vectorized table silently runs scalar.
    EXPECT_STREQ(vector_backend_name(), "scalar");
  }
}

#if !defined(__FMA__)

TEST(VectorParityTest, ElementwiseKernelsMatchBitwise) {
  if (!simd_vector_available()) GTEST_SKIP() << "no SIMD table on this host";
  for (std::size_t n : kSizes) {
    for (std::size_t off : kOffsets) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " off=" << off);
      const std::vector<float> x = random_vec(n + off, 7 * n + off + 1);
      const std::vector<float> y0 = random_vec(n + off, 13 * n + off + 2);
      const auto xs = std::span<const float>(x).subspan(off, n);

      // Runs `op` on a fresh copy of y0 under `backend`; padding outside the
      // subspan must come back untouched, so the whole vector is compared.
      const auto run = [&](VectorBackend backend, const auto& op) {
        VectorBackendScope scope(backend);
        std::vector<float> y = y0;
        op(std::span<float>(y).subspan(off, n));
        return y;
      };
      const auto both = [&](const char* what, const auto& op) {
        SCOPED_TRACE(what);
        EXPECT_EQ(run(VectorBackend::kScalar, op),
                  run(VectorBackend::kSimd, op));
      };

      both("add_inplace", [&](std::span<float> y) { add_inplace(y, xs); });
      both("sub_inplace", [&](std::span<float> y) { sub_inplace(y, xs); });
      both("scale_inplace", [&](std::span<float> y) { scale_inplace(y, 0.37f); });
      both("axpy", [&](std::span<float> y) { axpy(y, -1.25f, xs); });
      both("axpby", [&](std::span<float> y) { axpby(y, 0.6f, xs, 0.4f); });
      both("relu_inplace", [&](std::span<float> y) { relu_inplace(y); });
      both("relu_backward",
           [&](std::span<float> y) { relu_backward_inplace(y, xs); });
      both("add_to aliased", [&](std::span<float> y) { add_to(y, y, xs); });
      both("sub_to aliased", [&](std::span<float> y) { sub_to(y, y, xs); });
    }
  }
}

TEST(VectorParityTest, OutOfPlaceKernelsMatchBitwise) {
  if (!simd_vector_available()) GTEST_SKIP() << "no SIMD table on this host";
  for (std::size_t n : kSizes) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    const std::vector<float> a = random_vec(n, 3 * n + 1);
    const std::vector<float> b = random_vec(n, 5 * n + 2);
    const auto run = [&](VectorBackend backend, bool subtract) {
      VectorBackendScope scope(backend);
      std::vector<float> out(n, -99.0f);
      if (subtract) {
        sub_to(out, a, b);
      } else {
        add_to(out, a, b);
      }
      return out;
    };
    EXPECT_EQ(run(VectorBackend::kScalar, false),
              run(VectorBackend::kSimd, false));
    EXPECT_EQ(run(VectorBackend::kScalar, true),
              run(VectorBackend::kSimd, true));
  }
}

TEST(VectorParityTest, ReductionsMatchBitwise) {
  if (!simd_vector_available()) GTEST_SKIP() << "no SIMD table on this host";
  for (std::size_t n : kSizes) {
    for (std::size_t off : kOffsets) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " off=" << off);
      const std::vector<float> a = random_vec(n + off, 17 * n + off + 3);
      const std::vector<float> b = random_vec(n + off, 19 * n + off + 4);
      const auto as = std::span<const float>(a).subspan(off, n);
      const auto bs = std::span<const float>(b).subspan(off, n);

      const auto with = [&](VectorBackend backend, const auto& f) {
        VectorBackendScope scope(backend);
        return f();
      };
      const auto both = [&](const char* what, const auto& f) {
        SCOPED_TRACE(what);
        EXPECT_EQ(with(VectorBackend::kScalar, f),
                  with(VectorBackend::kSimd, f));
      };

      both("dot", [&] { return dot(as, bs); });
      both("sum", [&] { return sum(as); });
      both("l2_norm", [&] { return l2_norm(as); });
      both("max_abs", [&] { return max_abs(as); });
      both("cosine_similarity", [&] { return cosine_similarity(as, bs); });
      both("max_value", [&] { return max_value(as); });
      both("argmax", [&] { return argmax(as); });
    }
  }
}

#else
// Under -march=native with FMA the compiler may contract the scalar table's
// mul+add chains; the exact cross-backend comparison is not claimed there
// (same carve-out as the GEMM backends, DESIGN.md §11).
#endif

// The lane-strided contract also promises thread-count independence: pooled
// partial sums fold in the same lane order as the serial path. This holds
// per backend regardless of FMA contraction, so it is never gated.
TEST(VectorParityTest, ReductionsIndependentOfThreading) {
  const std::size_t n = (std::size_t{1} << 17) + 5;  // well past the pool cut
  const std::vector<float> a = random_vec(n, 101);
  const std::vector<float> b = random_vec(n, 102);
  for (VectorBackend backend : {VectorBackend::kScalar, VectorBackend::kSimd}) {
    SCOPED_TRACE(backend == VectorBackend::kScalar ? "scalar" : "simd");
    VectorBackendScope scope(backend);
    const double d = dot(a, b);
    const double s = sum(a);
    const double l = l2_norm(a);
    const double m = max_abs(a);
    const double c = cosine_similarity(a, b);
    SerialKernelScope serial;
    EXPECT_EQ(dot(a, b), d);
    EXPECT_EQ(sum(a), s);
    EXPECT_EQ(l2_norm(a), l);
    EXPECT_EQ(max_abs(a), m);
    EXPECT_EQ(cosine_similarity(a, b), c);
  }
}

TEST(VectorParityTest, MaxAbsIgnoresNaNOnBothBackends) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> v(1000, 0.25f);
  v[0] = nan;
  v[63] = -nan;
  v[500] = -7.5f;  // the magnitude winner
  v[999] = nan;
  for (VectorBackend backend : {VectorBackend::kScalar, VectorBackend::kSimd}) {
    SCOPED_TRACE(backend == VectorBackend::kScalar ? "scalar" : "simd");
    VectorBackendScope scope(backend);
    EXPECT_EQ(max_abs(v), 7.5);
    EXPECT_EQ(max_abs(std::span<const float>{}), 0.0);
    EXPECT_EQ(max_abs(std::vector<float>{nan}), 0.0);
  }
}

}  // namespace
}  // namespace seafl
