#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "tensor/gemm.h"

namespace seafl {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Naive reference: C = alpha op(A) op(B) + beta C.
std::vector<float> reference_gemm(Trans ta, Trans tb, std::size_t m,
                                  std::size_t n, std::size_t k, float alpha,
                                  const std::vector<float>& a,
                                  const std::vector<float>& b, float beta,
                                  std::vector<float> c) {
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta == Trans::kNo ? a[r * k + p] : a[p * m + r];
        const float bv = tb == Trans::kNo ? b[p * n + j] : b[j * k + p];
        acc += static_cast<double>(av) * bv;
      }
      c[r * n + j] = static_cast<float>(alpha * acc + beta * c[r * n + j]);
    }
  }
  return c;
}

struct GemmCase {
  Trans ta, tb;
  std::size_t m, n, k;
  float alpha, beta;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const auto& p = GetParam();
  const auto a = random_vec(p.m * p.k, 1);
  const auto b = random_vec(p.k * p.n, 2);
  const auto c0 = random_vec(p.m * p.n, 3);

  auto expected =
      reference_gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a, b, p.beta, c0);
  for (GemmBackend be : {GemmBackend::kReference, GemmBackend::kTiled}) {
    GemmBackendScope scope(be);
    auto actual = c0;
    gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a, b, p.beta, actual);
    for (std::size_t i = 0; i < expected.size(); ++i)
      ASSERT_NEAR(actual[i], expected[i], 1e-4f)
          << "backend " << static_cast<int>(be) << " at " << i << " for m="
          << p.m << " n=" << p.n << " k=" << p.k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposesAndSizes, GemmTest,
    ::testing::Values(
        // Small NN / NT / TN / TT
        GemmCase{Trans::kNo, Trans::kNo, 3, 4, 5, 1.0f, 0.0f},
        GemmCase{Trans::kNo, Trans::kYes, 3, 4, 5, 1.0f, 0.0f},
        GemmCase{Trans::kYes, Trans::kNo, 3, 4, 5, 1.0f, 0.0f},
        GemmCase{Trans::kYes, Trans::kYes, 3, 4, 5, 1.0f, 0.0f},
        // alpha/beta combinations
        GemmCase{Trans::kNo, Trans::kNo, 4, 4, 4, 2.0f, 1.0f},
        GemmCase{Trans::kNo, Trans::kYes, 4, 6, 2, -0.5f, 0.5f},
        GemmCase{Trans::kYes, Trans::kNo, 6, 2, 4, 1.0f, 1.0f},
        GemmCase{Trans::kYes, Trans::kYes, 2, 3, 7, 0.25f, 2.0f},
        // Vector-like shapes
        GemmCase{Trans::kNo, Trans::kNo, 1, 8, 3, 1.0f, 0.0f},
        GemmCase{Trans::kNo, Trans::kNo, 8, 1, 3, 1.0f, 0.0f},
        GemmCase{Trans::kNo, Trans::kNo, 1, 1, 64, 1.0f, 0.0f},
        // Large enough to cross the parallel threshold (m*n*k > 2^16)
        GemmCase{Trans::kNo, Trans::kNo, 48, 48, 48, 1.0f, 0.0f},
        GemmCase{Trans::kNo, Trans::kYes, 64, 32, 40, 1.0f, 0.0f},
        GemmCase{Trans::kYes, Trans::kNo, 32, 64, 40, 1.0f, 1.0f},
        GemmCase{Trans::kYes, Trans::kYes, 40, 40, 41, 1.5f, 0.0f}));

TEST(GemmEdgeTest, ZeroKScalesCByBeta) {
  std::vector<float> a, b;
  std::vector<float> c{2, 4, 6, 8};
  gemm(Trans::kNo, Trans::kNo, 2, 2, 0, 1.0f, a, b, 0.5f, c);
  EXPECT_EQ(c, (std::vector<float>{1, 2, 3, 4}));
  gemm(Trans::kNo, Trans::kNo, 2, 2, 0, 1.0f, a, b, 0.0f, c);
  EXPECT_EQ(c, (std::vector<float>{0, 0, 0, 0}));
}

TEST(GemmEdgeTest, EmptyOutputIsANoop) {
  std::vector<float> a{1, 2}, b{3, 4}, c;
  EXPECT_NO_THROW(gemm(Trans::kNo, Trans::kNo, 0, 5, 2, 1.0f, a, b, 0.0f, c));
}

TEST(GemmEdgeTest, UndersizedBuffersThrow) {
  std::vector<float> a(5), b(5), c(5);
  EXPECT_THROW(gemm(Trans::kNo, Trans::kNo, 3, 3, 3, 1.0f, a, b, 0.0f, c),
               Error);
}

TEST(MatmulTest, IdentityMultiplication) {
  // A * I = A
  std::vector<float> a{1, 2, 3, 4, 5, 6};           // 2x3
  std::vector<float> eye{1, 0, 0, 0, 1, 0, 0, 0, 1};  // 3x3
  std::vector<float> c(6);
  matmul(2, 3, 3, a, eye, c);
  EXPECT_EQ(c, a);
}

TEST(MatmulTest, KnownProduct) {
  std::vector<float> a{1, 2, 3, 4};  // [[1,2],[3,4]]
  std::vector<float> b{5, 6, 7, 8};  // [[5,6],[7,8]]
  std::vector<float> c(4);
  matmul(2, 2, 2, a, b, c);
  EXPECT_EQ(c, (std::vector<float>{19, 22, 43, 50}));
}

}  // namespace
}  // namespace seafl
