// Tests for the thread-local workspace arena (tensor/workspace.h): slot
// reuse, alignment, growth, the disabled ("before") mode, free-list
// recycling, and per-thread isolation.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace seafl {
namespace {

TEST(WorkspaceTest, SameSlotReusesStorageAcrossCalls) {
  Workspace& ws = Workspace::tls();
  auto first = ws.floats(WsSlot::kIm2colCols, 256);
  const std::uint64_t allocs_after_first = Workspace::total_slot_allocs();
  for (int i = 0; i < 100; ++i) {
    auto again = ws.floats(WsSlot::kIm2colCols, 256);
    ASSERT_EQ(first.data(), again.data());
    ASSERT_EQ(again.size(), 256u);
  }
  // Equal or smaller asks never reallocate.
  auto smaller = ws.floats(WsSlot::kIm2colCols, 17);
  EXPECT_EQ(first.data(), smaller.data());
  EXPECT_EQ(Workspace::total_slot_allocs(), allocs_after_first);
}

TEST(WorkspaceTest, DistinctSlotsNeverAlias) {
  Workspace& ws = Workspace::tls();
  auto a = ws.floats(WsSlot::kGemmPackA, 512);
  auto b = ws.floats(WsSlot::kGemmPackB, 512);
  auto c = ws.floats(WsSlot::kConvDcols, 512);
  EXPECT_NE(a.data(), b.data());
  EXPECT_NE(a.data(), c.data());
  EXPECT_NE(b.data(), c.data());
  // Acquiring one slot leaves the others' spans intact.
  a[0] = 1.0f;
  b[0] = 2.0f;
  (void)ws.floats(WsSlot::kGemmAcc, 4096);
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 2.0f);
}

TEST(WorkspaceTest, BuffersAre64ByteAligned) {
  Workspace& ws = Workspace::tls();
  for (std::size_t n : {1u, 7u, 100u, 4097u}) {
    auto s = ws.floats(WsSlot::kGemmRef, n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % Workspace::kAlign,
              0u);
  }
}

TEST(WorkspaceTest, GrowthIsGeometricUnderAlternatingSizes) {
  Workspace& ws = Workspace::tls();
  // Warm the slot at the large size; alternating smaller/larger asks must
  // then be alloc-free (the arena never shrinks).
  (void)ws.floats(WsSlot::kGemmAcc, 10000);
  const std::uint64_t warm = Workspace::total_slot_allocs();
  for (int i = 0; i < 50; ++i) {
    (void)ws.floats(WsSlot::kGemmAcc, (i % 2) ? 10000 : 100);
  }
  EXPECT_EQ(Workspace::total_slot_allocs(), warm);
  EXPECT_GE(ws.bytes_reserved(), 10000 * sizeof(float));
}

TEST(WorkspaceTest, DisabledModeAllocatesFreshEveryCall) {
  Workspace::set_enabled(false);
  Workspace& ws = Workspace::tls();
  const std::uint64_t before = Workspace::total_slot_allocs();
  (void)ws.floats(WsSlot::kIm2colCols, 64);
  (void)ws.floats(WsSlot::kIm2colCols, 64);
  (void)ws.floats(WsSlot::kIm2colCols, 64);
  Workspace::set_enabled(true);
  EXPECT_EQ(Workspace::total_slot_allocs(), before + 3);
}

TEST(WorkspaceTest, FreeListRecyclesReleasedStorage) {
  Workspace& ws = Workspace::tls();
  std::vector<float> v = ws.acquire_floats(1000);
  const float* ptr = v.data();
  ws.release_floats(std::move(v));
  std::vector<float> again = ws.acquire_floats(800);  // smaller fits
  EXPECT_EQ(again.data(), ptr);
  EXPECT_EQ(again.size(), 800u);
}

TEST(WorkspaceTest, EnsureU32KeepsCapacityAcrossShrinkGrow) {
  Workspace& ws = Workspace::tls();
  std::vector<std::uint32_t> v;
  ws.ensure_u32(v, 500);
  const auto cap = v.capacity();
  ws.ensure_u32(v, 10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.capacity(), cap);  // shrink never releases
  ws.ensure_u32(v, 500);
  EXPECT_EQ(v.size(), 500u);
  EXPECT_EQ(v.capacity(), cap);  // regrow within capacity is alloc-free
}

TEST(WorkspaceTest, ThreadsGetDistinctArenas) {
  Workspace& ws = Workspace::tls();
  auto mine = ws.floats(WsSlot::kGemmPackA, 128);
  float* other = nullptr;
  std::thread t([&] {
    other = Workspace::tls().floats(WsSlot::kGemmPackA, 128).data();
  });
  t.join();
  EXPECT_NE(mine.data(), other);
}

TEST(TensorEnsureShapeTest, MatchingShapeIsANoop) {
  Tensor t({4, 8});
  const float* data = t.data();
  t.fill(3.0f);
  EXPECT_FALSE(t.ensure_shape({4, 8}));
  EXPECT_EQ(t.data(), data);
  EXPECT_EQ(t[0], 3.0f);
}

TEST(TensorEnsureShapeTest, ReshapeWithinCapacityKeepsStorage) {
  Tensor t({10, 10});
  const float* data = t.data();
  EXPECT_TRUE(t.ensure_shape({5, 10}));  // shrink
  EXPECT_EQ(t.numel(), 50u);
  EXPECT_EQ(t.data(), data);
  EXPECT_TRUE(t.ensure_shape({10, 10}));  // regrow within capacity
  EXPECT_EQ(t.numel(), 100u);
  EXPECT_EQ(t.data(), data);
  EXPECT_EQ(t.shape(), (Shape{10, 10}));
}

TEST(TensorEnsureShapeTest, GrowthZeroFillsNewElements) {
  Tensor t({2});
  t.fill(7.0f);
  EXPECT_TRUE(t.ensure_shape({2, 3}));
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 2; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

}  // namespace
}  // namespace seafl
