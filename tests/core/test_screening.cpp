#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "core/screening.h"
#include "fl/strategies.h"
#include "tensor/ops.h"

namespace seafl {
namespace {

LocalUpdate update(std::size_t client, std::vector<float> weights,
                   std::size_t samples = 10) {
  LocalUpdate u;
  u.client = client;
  u.weights = std::move(weights);
  u.num_samples = samples;
  return u;
}

ScreeningConfig clip_only(double multiple) {
  ScreeningConfig c;
  c.clip_multiple = multiple;
  return c;
}

ScreeningConfig cosine_only(double min_cosine) {
  ScreeningConfig c;
  c.min_cosine = min_cosine;
  return c;
}

TEST(ScreeningTest, DisabledConfigIsNoOp) {
  const ModelVector global{0.0f, 0.0f};
  std::vector<LocalUpdate> buffer{update(0, {5.0f, 0.0f}),
                                  update(1, {0.0f, 5.0f}),
                                  update(2, {100.0f, 0.0f})};
  const auto before = buffer;
  const ScreeningReport report =
      screen_updates(ScreeningConfig{}, global, buffer);
  ASSERT_EQ(report.entries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(report.entries[i].clipped);
    EXPECT_FALSE(report.entries[i].rejected);
    EXPECT_EQ(buffer[i].weights, before[i].weights);
  }
}

TEST(ScreeningTest, NoOpBelowMinBuffer) {
  const ModelVector global{0.0f, 0.0f};
  std::vector<LocalUpdate> buffer{update(0, {1.0f, 0.0f}),
                                  update(1, {-100.0f, 0.0f})};
  ScreeningConfig config = clip_only(2.0);
  config.min_cosine = 0.0;
  ASSERT_TRUE(config.enabled());
  const auto before = buffer;
  const ScreeningReport report = screen_updates(config, global, buffer);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_FALSE(report.entries[i].clipped);
    EXPECT_FALSE(report.entries[i].rejected);
    EXPECT_EQ(buffer[i].weights, before[i].weights);
  }
}

TEST(ScreeningTest, ClipsAgainstMedianBound) {
  const ModelVector global{1.0f, 1.0f};  // non-zero: deltas are w_k - w_g
  // Four honest deltas of norm 1, one corrupt delta of norm 100.
  std::vector<LocalUpdate> buffer{
      update(0, {2.0f, 1.0f}), update(1, {1.0f, 2.0f}),
      update(2, {0.0f, 1.0f}), update(3, {1.0f, 0.0f}),
      update(4, {101.0f, 1.0f})};
  const ScreeningReport report =
      screen_updates(clip_only(2.0), global, buffer);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(report.entries[i].clipped) << "honest update " << i;
    EXPECT_DOUBLE_EQ(report.entries[i].delta_norm, 1.0);
  }
  EXPECT_TRUE(report.entries[4].clipped);
  EXPECT_DOUBLE_EQ(report.entries[4].delta_norm, 100.0);  // pre-clip norm
  // Median norm 1, bound 2: the corrupt delta is rescaled to norm 2 and the
  // buffered weights rewritten to w_g + clipped delta.
  EXPECT_NEAR(buffer[4].weights[0], 1.0f + 2.0f, 1e-4);
  EXPECT_NEAR(buffer[4].weights[1], 1.0f, 1e-4);
}

TEST(ScreeningTest, RejectsUpdatePointingAwayFromConsensus) {
  const ModelVector global{0.0f, 0.0f};
  // Four updates push +x, one pushes -x.
  std::vector<LocalUpdate> buffer{
      update(0, {1.0f, 0.1f}), update(1, {1.0f, -0.1f}),
      update(2, {1.0f, 0.0f}), update(3, {1.0f, 0.05f}),
      update(4, {-1.0f, 0.0f})};
  const ScreeningReport report =
      screen_updates(cosine_only(0.0), global, buffer);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(report.entries[i].rejected) << "honest update " << i;
    EXPECT_GT(report.entries[i].cosine, 0.9);
  }
  EXPECT_TRUE(report.entries[4].rejected);
  EXPECT_LT(report.entries[4].cosine, 0.0);
}

TEST(ScreeningTest, ClippingRunsBeforeCosine) {
  const ModelVector global{0.0f, 0.0f};
  // The corrupt update is both huge and opposed; after clipping it cannot
  // dominate the mean direction, so the cosine step still catches it.
  std::vector<LocalUpdate> buffer{
      update(0, {1.0f, 0.0f}), update(1, {1.0f, 0.1f}),
      update(2, {1.0f, -0.1f}), update(3, {-1000.0f, 0.0f})};
  ScreeningConfig config = clip_only(2.0);
  config.min_cosine = 0.0;
  const ScreeningReport report = screen_updates(config, global, buffer);
  EXPECT_TRUE(report.entries[3].clipped);
  EXPECT_TRUE(report.entries[3].rejected);
  EXPECT_FALSE(report.entries[0].rejected);
}

TEST(ScreenedStrategyTest, FiltersRejectedUpdatesFromAggregation) {
  ScreeningConfig config = cosine_only(0.0);
  ScreenedStrategy strategy(std::make_unique<FedAvgStrategy>(), config);
  EXPECT_EQ(strategy.name(), "FedAvg+screen");

  const ModelVector global{0.0f, 0.0f};
  std::vector<LocalUpdate> buffer{
      update(0, {1.0f, 0.0f}), update(1, {1.0f, 0.1f}),
      update(2, {1.0f, -0.1f}), update(3, {-2.0f, 0.0f})};
  ScreeningReport out;
  AggregationContext ctx;
  ctx.global = &global;
  ctx.screening = &out;
  for (const auto& u : buffer) ctx.total_samples += u.num_samples;

  ModelVector result = global;
  strategy.aggregate(ctx, buffer, result);

  ASSERT_EQ(out.entries.size(), 4u);
  EXPECT_TRUE(out.entries[3].rejected);
  EXPECT_EQ(strategy.last_report().entries.size(), 4u);
  // FedAvg over the three kept updates only: mean x-coordinate 1, not
  // dragged negative by the quarantined one.
  EXPECT_NEAR(result[0], 1.0f, 1e-4);
}

TEST(ScreenedStrategyTest, WholeBufferRejectedLeavesGlobalUnchanged) {
  ScreeningConfig config = cosine_only(0.5);
  ScreenedStrategy strategy(std::make_unique<FedAvgStrategy>(), config);
  const ModelVector global{3.0f, -2.0f};
  // Two opposite pairs: the mean delta is zero, every cosine is 0 < 0.5.
  std::vector<LocalUpdate> buffer{
      update(0, {4.0f, -2.0f}), update(1, {2.0f, -2.0f}),
      update(2, {3.0f, -1.0f}), update(3, {3.0f, -3.0f})};
  AggregationContext ctx;
  ctx.global = &global;
  ModelVector result = global;
  strategy.aggregate(ctx, buffer, result);
  for (const auto& e : strategy.last_report().entries)
    EXPECT_TRUE(e.rejected);
  EXPECT_EQ(result, global);
}

TEST(ScreenedStrategyTest, RejectsInvalidConfig) {
  ScreeningConfig bad;
  bad.min_cosine = 1.5;
  EXPECT_THROW(ScreenedStrategy(std::make_unique<FedAvgStrategy>(), bad),
               Error);
  ScreeningConfig neg;
  neg.clip_multiple = -1.0;
  EXPECT_THROW(ScreenedStrategy(std::make_unique<FedAvgStrategy>(), neg),
               Error);
  EXPECT_THROW(ScreenedStrategy(nullptr, ScreeningConfig{}), Error);
}

}  // namespace
}  // namespace seafl
