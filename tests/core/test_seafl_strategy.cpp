#include <gtest/gtest.h>

#include "core/seafl_strategy.h"
#include "fl/strategies.h"

namespace seafl {
namespace {

LocalUpdate make_update(std::size_t client, std::uint64_t base_round,
                        ModelVector weights, std::size_t samples,
                        std::size_t epochs = 5) {
  LocalUpdate u;
  u.client = client;
  u.base_round = base_round;
  u.weights = std::move(weights);
  u.num_samples = samples;
  u.epochs_completed = epochs;
  return u;
}

AggregationContext make_ctx(std::uint64_t round, const ModelVector& global,
                            std::span<const LocalUpdate> buffer) {
  AggregationContext ctx;
  ctx.round = round;
  ctx.global = &global;
  ctx.total_samples = 0;
  for (const auto& u : buffer) ctx.total_samples += u.num_samples;
  return ctx;
}

TEST(SeaflStrategyTest, HandComputedAggregation) {
  // Single fresh, perfectly aligned update with vartheta = 0.5:
  // p = 1 after normalization, w_new = update, mixed 50/50.
  SeaflConfig cfg;
  cfg.vartheta = 0.5;
  SeaflStrategy strategy(cfg);

  ModelVector global{2.0f, 0.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {4.0f, 0.0f}, 10));
  strategy.aggregate(make_ctx(0, global, buffer), buffer, global);
  EXPECT_FLOAT_EQ(global[0], 3.0f);
  EXPECT_FLOAT_EQ(global[1], 0.0f);
}

TEST(SeaflStrategyTest, BreakdownExposedAfterAggregate) {
  SeaflStrategy strategy(SeaflConfig{});
  ModelVector global{1.0f, 1.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 3, {1.0f, 0.9f}, 10));
  buffer.push_back(make_update(1, 5, {0.9f, 1.1f}, 20));
  strategy.aggregate(make_ctx(5, global, buffer), buffer, global);

  const auto& bd = strategy.last_breakdown();
  ASSERT_EQ(bd.size(), 2u);
  EXPECT_EQ(bd[0].staleness, 2u);
  EXPECT_EQ(bd[1].staleness, 0u);
  EXPECT_NEAR(bd[0].weight + bd[1].weight, 1.0, 1e-9);
}

TEST(SeaflStrategyTest, StaleUpdateContributesLess) {
  // Same weights and sample counts; only staleness differs. After
  // aggregation the global model must sit closer to the fresh update.
  SeaflConfig cfg;
  cfg.weights.mu = 0.0;
  SeaflStrategy strategy(cfg);

  ModelVector global{0.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 10, {1.0f}, 10));  // fresh, pushes up
  buffer.push_back(make_update(1, 1, {-1.0f}, 10));  // stale, pushes down
  strategy.aggregate(make_ctx(10, global, buffer), buffer, global);
  EXPECT_GT(global[0], 0.0f);
}

TEST(SeaflStrategyTest, DegeneratesToFedBuffWithUniformWeights) {
  // The paper (§V): SEAFL's aggregation reduces to FedBuff when p = 1/K.
  // Force uniformity: alpha > 0, mu = 0 (no similarity term), all updates
  // equally fresh and equally sized -> identical p, normalized to 1/K.
  SeaflConfig cfg;
  cfg.weights.alpha = 3.0;
  cfg.weights.mu = 0.0;
  cfg.vartheta = 0.8;
  SeaflStrategy seafl(cfg);
  FedBuffStrategy fedbuff(FedBuffConfig{.vartheta = 0.8});

  Rng rng(5);
  ModelVector global_a(32), update1(32), update2(32), update3(32);
  for (auto* v : {&global_a, &update1, &update2, &update3})
    for (auto& x : *v) x = static_cast<float>(rng.normal());
  ModelVector global_b = global_a;

  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 4, update1, 10));
  buffer.push_back(make_update(1, 4, update2, 10));
  buffer.push_back(make_update(2, 4, update3, 10));

  seafl.aggregate(make_ctx(4, global_a, buffer), buffer, global_a);
  fedbuff.aggregate(make_ctx(4, global_b, buffer), buffer, global_b);
  for (std::size_t i = 0; i < global_a.size(); ++i)
    ASSERT_NEAR(global_a[i], global_b[i], 1e-5) << "at " << i;
}

TEST(SeaflStrategyTest, PartialUpdateDownscaled) {
  SeaflConfig cfg;
  cfg.weights.mu = 0.0;
  cfg.scale_partial_updates = true;
  cfg.full_epochs = 4;
  SeaflStrategy strategy(cfg);

  ModelVector global{0.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {1.0f}, 10, /*epochs=*/4));   // full
  buffer.push_back(make_update(1, 0, {-1.0f}, 10, /*epochs=*/1));  // partial
  strategy.aggregate(make_ctx(0, global, buffer), buffer, global);
  // Partial update weight scaled by 1/4, so positive side dominates.
  EXPECT_GT(global[0], 0.0f);
  const auto& bd = strategy.last_breakdown();
  EXPECT_GT(bd[0].weight, bd[1].weight);
  EXPECT_NEAR(bd[0].weight + bd[1].weight, 1.0, 1e-9);
}

TEST(SeaflStrategyTest, PartialScalingCanBeDisabled) {
  SeaflConfig cfg;
  cfg.weights.mu = 0.0;
  cfg.scale_partial_updates = false;
  cfg.full_epochs = 4;
  SeaflStrategy strategy(cfg);

  ModelVector global{0.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {1.0f}, 10, 4));
  buffer.push_back(make_update(1, 0, {-1.0f}, 10, 1));
  strategy.aggregate(make_ctx(0, global, buffer), buffer, global);
  EXPECT_NEAR(global[0], 0.0f, 1e-6);  // symmetric without scaling
}

TEST(SeaflStrategyTest, InfiniteStalenessLimitStillWorks) {
  SeaflConfig cfg;
  cfg.weights.staleness_limit = kNoStalenessLimit;
  SeaflStrategy strategy(cfg);
  ModelVector global{1.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {2.0f}, 10));
  EXPECT_NO_THROW(
      strategy.aggregate(make_ctx(500, global, buffer), buffer, global));
}

TEST(SeaflStrategyTest, NameAndConfigAccessors) {
  SeaflConfig cfg;
  cfg.vartheta = 0.6;
  SeaflStrategy strategy(cfg);
  EXPECT_EQ(strategy.name(), "SEAFL");
  EXPECT_DOUBLE_EQ(strategy.config().vartheta, 0.6);
}

TEST(SeaflStrategyTest, RejectsInvalidConfig) {
  SeaflConfig bad;
  bad.vartheta = 0.0;
  EXPECT_THROW(SeaflStrategy{bad}, Error);
  bad.vartheta = 0.8;
  bad.full_epochs = 0;
  EXPECT_THROW(SeaflStrategy{bad}, Error);
}

TEST(SeaflStrategyTest, DimensionMismatchThrows) {
  SeaflStrategy strategy{SeaflConfig{}};
  ModelVector global{1.0f, 2.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {1.0f}, 10));
  EXPECT_THROW(
      strategy.aggregate(make_ctx(0, global, buffer), buffer, global),
      Error);
}

}  // namespace
}  // namespace seafl
