#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "core/adaptive_weights.h"
#include "core/weight_bounds.h"

namespace seafl {
namespace {

LocalUpdate make_update(std::size_t client, std::uint64_t base_round,
                        ModelVector weights, std::size_t samples) {
  LocalUpdate u;
  u.client = client;
  u.base_round = base_round;
  u.weights = std::move(weights);
  u.num_samples = samples;
  return u;
}

AggregationContext make_ctx(std::uint64_t round, const ModelVector& global,
                            std::span<const LocalUpdate> buffer) {
  AggregationContext ctx;
  ctx.round = round;
  ctx.global = &global;
  ctx.total_samples = 0;
  for (const auto& u : buffer) ctx.total_samples += u.num_samples;
  return ctx;
}

TEST(AdaptiveWeightsTest, NormalizedWeightsSumToOne) {
  AdaptiveWeightConfig cfg;
  ModelVector global{1.0f, 2.0f, 3.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 5, {1.1f, 2.0f, 2.9f}, 30));
  buffer.push_back(make_update(1, 3, {0.5f, 1.0f, 4.0f}, 10));
  buffer.push_back(make_update(2, 5, {-1.0f, 2.0f, 3.0f}, 20));

  const auto breakdown =
      compute_adaptive_weights(cfg, make_ctx(5, global, buffer), buffer);
  ASSERT_EQ(breakdown.size(), 3u);
  double total = 0.0;
  for (const auto& b : breakdown) total += b.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AdaptiveWeightsTest, StalenessReducesWeight) {
  // Two identical updates except staleness: the stale one weighs less.
  AdaptiveWeightConfig cfg;
  cfg.mu = 0.0;  // isolate the staleness term
  ModelVector global{1.0f, 1.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, /*base_round=*/10, {1.0f, 1.0f}, 10));
  buffer.push_back(make_update(1, /*base_round=*/2, {1.0f, 1.0f}, 10));

  const auto breakdown =
      compute_adaptive_weights(cfg, make_ctx(10, global, buffer), buffer);
  EXPECT_EQ(breakdown[0].staleness, 0u);
  EXPECT_EQ(breakdown[1].staleness, 8u);
  EXPECT_GT(breakdown[0].weight, breakdown[1].weight);
}

TEST(AdaptiveWeightsTest, SimilarityIncreasesWeight) {
  AdaptiveWeightConfig cfg;
  cfg.alpha = 0.0;  // isolate the importance term
  cfg.mu = 1.0;
  ModelVector global{1.0f, 0.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {2.0f, 0.0f}, 10));   // aligned
  buffer.push_back(make_update(1, 0, {-2.0f, 0.0f}, 10));  // opposed

  const auto breakdown =
      compute_adaptive_weights(cfg, make_ctx(0, global, buffer), buffer);
  EXPECT_GT(breakdown[0].theta, breakdown[1].theta);
  EXPECT_GT(breakdown[0].weight, breakdown[1].weight);
  EXPECT_NEAR(breakdown[1].importance, 0.0, 1e-9);  // theta = -1 -> s = 0
}

TEST(AdaptiveWeightsTest, DataFractionScalesWeight) {
  AdaptiveWeightConfig cfg;
  cfg.mu = 0.0;
  ModelVector global{1.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {1.0f}, 30));
  buffer.push_back(make_update(1, 0, {1.0f}, 10));
  const auto breakdown =
      compute_adaptive_weights(cfg, make_ctx(0, global, buffer), buffer);
  EXPECT_NEAR(breakdown[0].data_fraction, 0.75, 1e-12);
  EXPECT_NEAR(breakdown[0].weight / breakdown[1].weight, 3.0, 1e-6);
}

TEST(AdaptiveWeightsTest, Equation6Composition) {
  // Hand-computed single-update case: p = d * (gamma + s), normalized to 1.
  // With the default delta input, update {2, 0} against global {1, 0} has
  // delta {1, 0} parallel to the global model -> theta = 1.
  AdaptiveWeightConfig cfg;
  cfg.alpha = 2.0;
  cfg.mu = 1.0;
  cfg.staleness_limit = 10;
  ModelVector global{1.0f, 0.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, /*base_round=*/5, {2.0f, 0.0f}, 10));
  const auto breakdown =
      compute_adaptive_weights(cfg, make_ctx(10, global, buffer), buffer);
  // gamma = 2 * 10 / (5 + 10); theta = 1 -> s = 1 * (1+1)/2 = 1.
  EXPECT_NEAR(breakdown[0].gamma, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(breakdown[0].importance, 1.0, 1e-6);
  EXPECT_NEAR(breakdown[0].raw, 1.0 * (4.0 / 3.0 + 1.0), 1e-6);
  EXPECT_NEAR(breakdown[0].weight, 1.0, 1e-12);  // normalized single weight
}

TEST(AdaptiveWeightsTest, UnnormalizedModeKeepsRawWeights) {
  AdaptiveWeightConfig cfg;
  cfg.normalize = false;
  ModelVector global{1.0f};
  std::vector<LocalUpdate> buffer;
  buffer.push_back(make_update(0, 0, {1.0f}, 10));
  buffer.push_back(make_update(1, 0, {1.0f}, 10));
  const auto breakdown =
      compute_adaptive_weights(cfg, make_ctx(0, global, buffer), buffer);
  for (const auto& b : breakdown) EXPECT_DOUBLE_EQ(b.weight, b.raw);
}

TEST(AdaptiveWeightsTest, RejectsInvalidInputs) {
  AdaptiveWeightConfig cfg;
  ModelVector global{1.0f};
  std::vector<LocalUpdate> buffer;
  EXPECT_THROW(
      compute_adaptive_weights(cfg, make_ctx(0, global, buffer), buffer),
      Error);  // empty buffer

  buffer.push_back(make_update(0, 5, {1.0f}, 10));
  EXPECT_THROW(
      compute_adaptive_weights(cfg, make_ctx(0, global, buffer), buffer),
      Error);  // update from the future

  cfg.alpha = cfg.mu = 0.0;
  buffer[0].base_round = 0;
  EXPECT_THROW(
      compute_adaptive_weights(cfg, make_ctx(0, global, buffer), buffer),
      Error);  // both knobs zero
}

// --- Lemma 1 property sweep ------------------------------------------------
// For random buffers across the (alpha, mu) grid, every raw weight must lie
// in [alpha/2 * d_k, (alpha + mu) * d_k].

class Lemma1Property
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Lemma1Property, RawWeightsWithinLemma1Interval) {
  const auto [alpha, mu] = GetParam();
  AdaptiveWeightConfig cfg;
  cfg.alpha = alpha;
  cfg.mu = mu;
  cfg.staleness_limit = 10;
  cfg.normalize = false;

  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(6);
    const std::uint64_t round = 10 + rng.uniform_int(5);
    ModelVector global(16);
    for (auto& v : global) v = static_cast<float>(rng.normal());

    std::vector<LocalUpdate> buffer;
    for (std::size_t i = 0; i < n; ++i) {
      ModelVector w(16);
      for (auto& v : w) v = static_cast<float>(rng.normal());
      // Staleness within the limit, as SEAFL's waiting guarantees.
      const std::uint64_t staleness = rng.uniform_int(cfg.staleness_limit + 1);
      buffer.push_back(
          make_update(i, round - staleness, std::move(w),
                      1 + rng.uniform_int(50)));
    }
    const auto ctx = make_ctx(round, global, buffer);
    const auto breakdown = compute_adaptive_weights(cfg, ctx, buffer);
    EXPECT_TRUE(satisfies_lemma1(alpha, mu, breakdown))
        << "alpha=" << alpha << " mu=" << mu << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaMuGrid, Lemma1Property,
    ::testing::Combine(::testing::Values(0.5, 1.0, 3.0, 10.0),
                       ::testing::Values(0.0, 1.0, 3.0, 10.0)));

}  // namespace
}  // namespace seafl
