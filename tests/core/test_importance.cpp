#include <gtest/gtest.h>

#include <cmath>

#include "core/importance.h"
#include "common/rng.h"

namespace seafl {
namespace {

TEST(ImportanceFactorTest, Equation5Mapping) {
  // s = mu * (theta + 1) / 2.
  EXPECT_DOUBLE_EQ(importance_factor(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(importance_factor(1.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(importance_factor(1.0, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(importance_factor(2.0, 0.5), 1.5);
}

TEST(ImportanceFactorTest, MuZeroDisablesImportance) {
  EXPECT_DOUBLE_EQ(importance_factor(0.0, 0.7), 0.0);
}

TEST(ImportanceFactorTest, RejectsInvalidArguments) {
  EXPECT_THROW(importance_factor(-1.0, 0.0), Error);
  EXPECT_THROW(importance_factor(1.0, 1.5), Error);
  EXPECT_THROW(importance_factor(1.0, -1.5), Error);
}

TEST(SimilarityTest, CosineOfWeightsAgainstGlobal) {
  const std::vector<float> global{1.0f, 0.0f};
  const std::vector<float> same{2.0f, 0.0f};
  const std::vector<float> orth{0.0f, 3.0f};
  EXPECT_NEAR(importance_similarity(same, global, ImportanceInput::kWeights,
                                    SimilarityKind::kCosine),
              1.0, 1e-6);
  EXPECT_NEAR(importance_similarity(orth, global, ImportanceInput::kWeights,
                                    SimilarityKind::kCosine),
              0.0, 1e-9);
}

TEST(SimilarityTest, DeltaVariantComparesDifference) {
  const std::vector<float> global{1.0f, 0.0f};
  // client = global + delta where delta = (0, 1): orthogonal to global.
  const std::vector<float> client{1.0f, 1.0f};
  EXPECT_NEAR(importance_similarity(client, global, ImportanceInput::kDelta,
                                    SimilarityKind::kCosine),
              0.0, 1e-6);
  // client - global parallel to global.
  const std::vector<float> forward{3.0f, 0.0f};
  EXPECT_NEAR(importance_similarity(forward, global, ImportanceInput::kDelta,
                                    SimilarityKind::kCosine),
              1.0, 1e-6);
}

TEST(SimilarityTest, DotVariantStaysInUnitInterval) {
  Rng rng(3);
  std::vector<float> a(512), b(512);
  for (auto& v : a) v = static_cast<float>(rng.normal(0.0, 10.0));
  for (auto& v : b) v = static_cast<float>(rng.normal(0.0, 10.0));
  const double theta = importance_similarity(
      a, b, ImportanceInput::kWeights, SimilarityKind::kDotProduct);
  EXPECT_GE(theta, -1.0);
  EXPECT_LE(theta, 1.0);
}

TEST(SimilarityTest, DotVariantSignMatchesAlignment) {
  const std::vector<float> global{1.0f, 1.0f};
  const std::vector<float> aligned{2.0f, 2.0f};
  const std::vector<float> opposed{-2.0f, -2.0f};
  EXPECT_GT(importance_similarity(aligned, global, ImportanceInput::kWeights,
                                  SimilarityKind::kDotProduct),
            0.0);
  EXPECT_LT(importance_similarity(opposed, global, ImportanceInput::kWeights,
                                  SimilarityKind::kDotProduct),
            0.0);
}

TEST(SimilarityTest, CosineIsScaleInvariantDotIsNot) {
  const std::vector<float> global{1.0f, 2.0f, 3.0f};
  const std::vector<float> small{0.1f, 0.2f, 0.3f};
  const std::vector<float> large{10.0f, 20.0f, 30.0f};
  const double cos_small = importance_similarity(
      small, global, ImportanceInput::kWeights, SimilarityKind::kCosine);
  const double cos_large = importance_similarity(
      large, global, ImportanceInput::kWeights, SimilarityKind::kCosine);
  EXPECT_NEAR(cos_small, cos_large, 1e-6);

  const double dot_small = importance_similarity(
      small, global, ImportanceInput::kWeights, SimilarityKind::kDotProduct);
  const double dot_large = importance_similarity(
      large, global, ImportanceInput::kWeights, SimilarityKind::kDotProduct);
  EXPECT_LT(dot_small, dot_large);
}

TEST(SimilarityTest, RejectsMismatchedOrEmpty) {
  const std::vector<float> a{1.0f};
  const std::vector<float> b{1.0f, 2.0f};
  EXPECT_THROW(importance_similarity(a, b, ImportanceInput::kWeights,
                                     SimilarityKind::kCosine),
               Error);
  const std::vector<float> empty;
  EXPECT_THROW(importance_similarity(empty, empty, ImportanceInput::kWeights,
                                     SimilarityKind::kCosine),
               Error);
}

// Property: for any random pair, Eq. 5 output lies in [0, mu].
class ImportanceRangeTest : public ::testing::TestWithParam<double> {};

TEST_P(ImportanceRangeTest, FactorWithinBounds) {
  const double mu = GetParam();
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> a(32), b(32);
    for (auto& v : a) v = static_cast<float>(rng.normal());
    for (auto& v : b) v = static_cast<float>(rng.normal());
    for (const auto input :
         {ImportanceInput::kWeights, ImportanceInput::kDelta}) {
      for (const auto kind :
           {SimilarityKind::kCosine, SimilarityKind::kDotProduct}) {
        const double theta = importance_similarity(a, b, input, kind);
        const double s = importance_factor(mu, theta);
        ASSERT_GE(s, 0.0);
        ASSERT_LE(s, mu + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MuValues, ImportanceRangeTest,
                         ::testing::Values(0.0, 0.5, 1.0, 5.0, 10.0));

}  // namespace
}  // namespace seafl
