#include <gtest/gtest.h>

#include "core/presets.h"
#include "core/seafl_strategy.h"

namespace seafl {
namespace {

class PresetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PresetTest, ArmConstructsWithStrategyAndLabel) {
  ExperimentParams params;
  const Arm arm = make_arm(GetParam(), params);
  ASSERT_NE(arm.strategy, nullptr);
  EXPECT_FALSE(arm.label.empty());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, PresetTest,
                         ::testing::ValuesIn(known_algorithms()));

TEST(PresetConfigTest, SeaflArmUsesWaitingProtocol) {
  ExperimentParams params;
  params.staleness_limit = 7;
  const Arm arm = make_arm("seafl", params);
  EXPECT_EQ(arm.config.staleness_limit, 7u);
  EXPECT_TRUE(arm.config.wait_for_stale);
  EXPECT_FALSE(arm.config.partial_training);
  EXPECT_EQ(arm.config.mode, FlMode::kSemiAsync);
  EXPECT_EQ(arm.strategy->name(), "SEAFL");
  EXPECT_NE(arm.label.find("beta=7"), std::string::npos);
}

TEST(PresetConfigTest, Seafl2AddsPartialTrainingWithoutBlocking) {
  // Algorithm 2 notifies stale devices instead of holding aggregation for
  // them; only Algorithm 1 (the "seafl" arm) synchronously waits.
  const Arm arm = make_arm("seafl2", ExperimentParams{});
  EXPECT_FALSE(arm.config.wait_for_stale);
  EXPECT_TRUE(arm.config.partial_training);
  EXPECT_EQ(arm.config.staleness_limit, ExperimentParams{}.staleness_limit);
}

TEST(PresetConfigTest, SeaflInfHasNoLimit) {
  const Arm arm = make_arm("seafl-inf", ExperimentParams{});
  EXPECT_EQ(arm.config.staleness_limit, kNoStalenessLimit);
  EXPECT_FALSE(arm.config.wait_for_stale);
  const auto* strategy =
      dynamic_cast<const SeaflStrategy*>(arm.strategy.get());
  ASSERT_NE(strategy, nullptr);
  EXPECT_EQ(strategy->config().weights.staleness_limit, kNoStalenessLimit);
}

TEST(PresetConfigTest, FedBuffHasNoStalenessLimit) {
  const Arm arm = make_arm("fedbuff", ExperimentParams{});
  EXPECT_EQ(arm.config.staleness_limit, kNoStalenessLimit);
  EXPECT_FALSE(arm.config.wait_for_stale);
  EXPECT_EQ(arm.strategy->name(), "FedBuff");
}

TEST(PresetConfigTest, FedAsyncForcesBufferOne) {
  ExperimentParams params;
  params.buffer_size = 10;
  const Arm arm = make_arm("fedasync", params);
  EXPECT_EQ(arm.config.buffer_size, 1u);
}

TEST(PresetConfigTest, FedAvgIsSynchronous) {
  const Arm arm = make_arm("fedavg", ExperimentParams{});
  EXPECT_EQ(arm.config.mode, FlMode::kSync);
  EXPECT_EQ(arm.strategy->name(), "FedAvg");
}

TEST(PresetConfigTest, SafaDropUsesDropProtocol) {
  const Arm arm = make_arm("safa-drop", ExperimentParams{});
  EXPECT_TRUE(arm.config.drop_stale);
  EXPECT_FALSE(arm.config.wait_for_stale);
}

TEST(PresetConfigTest, SharedKnobsPropagate) {
  ExperimentParams params;
  params.buffer_size = 5;
  params.concurrency = 11;
  params.local_epochs = 3;
  params.learning_rate = 0.02f;
  params.target_accuracy = 0.77;
  params.seed = 99;
  const Arm arm = make_arm("seafl", params);
  EXPECT_EQ(arm.config.buffer_size, 5u);
  EXPECT_EQ(arm.config.concurrency, 11u);
  EXPECT_EQ(arm.config.local_epochs, 3u);
  EXPECT_FLOAT_EQ(arm.config.sgd.learning_rate, 0.02f);
  EXPECT_DOUBLE_EQ(arm.config.target_accuracy, 0.77);
  EXPECT_EQ(arm.config.seed, 99u);
}

TEST(PresetConfigTest, UnknownAlgorithmThrows) {
  EXPECT_THROW(make_arm("fedsgd-9000", ExperimentParams{}), Error);
}

TEST(PresetConfigTest, Seafl2SubEnablesSubmodelTraining) {
  const Arm arm = make_arm("seafl2-sub", ExperimentParams{});
  EXPECT_TRUE(arm.config.partial_training);
  EXPECT_TRUE(arm.config.submodel_training);
  EXPECT_EQ(arm.strategy->name(), "SEAFL");
}

TEST(PresetConfigTest, FedProxIsSyncWithProximalTerm) {
  const Arm arm = make_arm("fedprox", ExperimentParams{});
  EXPECT_EQ(arm.config.mode, FlMode::kSync);
  EXPECT_GT(arm.config.proximal_mu, 0.0);
  EXPECT_EQ(arm.strategy->name(), "FedAvg");
}

TEST(PresetConfigTest, FedSaEpochsEnablesAdaptiveEpochs) {
  const Arm arm = make_arm("fedsa-epochs", ExperimentParams{});
  EXPECT_TRUE(arm.config.adaptive_epochs);
  EXPECT_EQ(arm.config.mode, FlMode::kSemiAsync);
  EXPECT_EQ(arm.strategy->name(), "FedBuff");
}

TEST(RunArmTest, ExecutesEndToEnd) {
  TaskSpec spec;
  spec.name = "synth-mnist";
  spec.num_clients = 10;
  spec.samples_per_client = 15;
  spec.test_samples = 50;
  const FlTask task = make_task(spec);

  FleetConfig fc;
  fc.num_devices = 10;
  const Fleet fleet(fc);

  ExperimentParams params;
  params.buffer_size = 3;
  params.concurrency = 6;
  params.local_epochs = 2;
  params.max_rounds = 5;
  params.stop_at_target = false;
  const RunResult r = run_arm("seafl", params, task, fleet);
  EXPECT_EQ(r.rounds, 5u);
  EXPECT_FALSE(r.curve.empty());
}

}  // namespace
}  // namespace seafl
