#include <gtest/gtest.h>

#include "core/weight_bounds.h"

namespace seafl {
namespace {

TEST(Lemma1IntervalTest, Endpoints) {
  const auto iv = lemma1_interval(3.0, 1.0, 0.1);
  EXPECT_DOUBLE_EQ(iv.lower, 0.15);  // alpha/2 * d
  EXPECT_DOUBLE_EQ(iv.upper, 0.4);   // (alpha + mu) * d
}

TEST(Lemma1IntervalTest, ZeroDataFractionCollapses) {
  const auto iv = lemma1_interval(3.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(iv.lower, 0.0);
  EXPECT_DOUBLE_EQ(iv.upper, 0.0);
}

TEST(Lemma1IntervalTest, RejectsInvalidArguments) {
  EXPECT_THROW(lemma1_interval(-1.0, 1.0, 0.5), Error);
  EXPECT_THROW(lemma1_interval(1.0, 1.0, 1.5), Error);
}

TEST(SatisfiesLemma1Test, AcceptsInBoundsRejectsOutOfBounds) {
  WeightBreakdown ok;
  ok.data_fraction = 0.2;
  ok.raw = 0.5;  // in [0.3, 0.8] for alpha=3, mu=1
  EXPECT_TRUE(satisfies_lemma1(3.0, 1.0, std::vector<WeightBreakdown>{ok}));

  WeightBreakdown low = ok;
  low.raw = 0.1;
  EXPECT_FALSE(satisfies_lemma1(3.0, 1.0, std::vector<WeightBreakdown>{low}));

  WeightBreakdown high = ok;
  high.raw = 0.9;
  EXPECT_FALSE(
      satisfies_lemma1(3.0, 1.0, std::vector<WeightBreakdown>{high}));
}

TEST(LambdaDTest, SumOfSquares) {
  const std::vector<double> d{0.5, 0.3, 0.2};
  EXPECT_NEAR(lambda_d(d), 0.25 + 0.09 + 0.04, 1e-12);
  EXPECT_THROW(lambda_d(std::vector<double>{1.5}), Error);
}

TEST(LambdaDTest, UniformFractionsGiveOneOverK) {
  const std::vector<double> d(10, 0.1);
  EXPECT_NEAR(lambda_d(d), 0.1, 1e-12);
}

TEST(MaxStableLrTest, MatchesEquation10) {
  // eta_max = alpha^2 lambda / (4 (alpha+mu) K L).
  const double eta = max_stable_learning_rate(3.0, 1.0, 0.1, 10, 2.0);
  EXPECT_NEAR(eta, 9.0 * 0.1 / (4.0 * 4.0 * 10.0 * 2.0), 1e-12);
}

TEST(MaxStableLrTest, LargerBufferDemandsSmallerLr) {
  const double k5 = max_stable_learning_rate(3.0, 1.0, 0.1, 5, 1.0);
  const double k20 = max_stable_learning_rate(3.0, 1.0, 0.1, 20, 1.0);
  EXPECT_GT(k5, k20);
  EXPECT_NEAR(k5 / k20, 4.0, 1e-9);
}

TEST(MaxStableLrTest, LargerMuDemandsSmallerLr) {
  // More importance weighting widens the Lemma-1 interval, tightening Eq.10.
  EXPECT_GT(max_stable_learning_rate(3.0, 0.0, 0.1, 10, 1.0),
            max_stable_learning_rate(3.0, 5.0, 0.1, 10, 1.0));
}

TEST(MaxStableLrTest, RejectsInvalidArguments) {
  EXPECT_THROW(max_stable_learning_rate(0.0, 1.0, 0.1, 10, 1.0), Error);
  EXPECT_THROW(max_stable_learning_rate(3.0, 1.0, 0.0, 10, 1.0), Error);
  EXPECT_THROW(max_stable_learning_rate(3.0, 1.0, 0.1, 0, 1.0), Error);
  EXPECT_THROW(max_stable_learning_rate(3.0, 1.0, 0.1, 10, 0.0), Error);
}

TEST(SatisfiesLrTest, BoundaryInclusive) {
  const double eta = max_stable_learning_rate(3.0, 1.0, 0.1, 10, 2.0);
  EXPECT_TRUE(satisfies_lr_condition(eta, 3.0, 1.0, 0.1, 10, 2.0));
  EXPECT_TRUE(satisfies_lr_condition(eta * 0.5, 3.0, 1.0, 0.1, 10, 2.0));
  EXPECT_FALSE(satisfies_lr_condition(eta * 2.0, 3.0, 1.0, 0.1, 10, 2.0));
  EXPECT_THROW(satisfies_lr_condition(0.0, 3.0, 1.0, 0.1, 10, 2.0), Error);
}

}  // namespace
}  // namespace seafl
