#include <gtest/gtest.h>

#include "core/staleness.h"

namespace seafl {
namespace {

TEST(StalenessFactorTest, FreshUpdateGetsAlpha) {
  EXPECT_DOUBLE_EQ(staleness_factor(3.0, 0, 10), 3.0);
  EXPECT_DOUBLE_EQ(staleness_factor(1.0, 0, 1), 1.0);
}

TEST(StalenessFactorTest, AtLimitGetsAlphaOverTwo) {
  // Eq. 4 with S = beta: alpha * beta / (beta + beta) = alpha / 2 — the
  // lower endpoint of Lemma 1.
  EXPECT_DOUBLE_EQ(staleness_factor(3.0, 10, 10), 1.5);
  EXPECT_DOUBLE_EQ(staleness_factor(4.0, 7, 7), 2.0);
}

TEST(StalenessFactorTest, ExactEquation4Values) {
  // alpha * beta / (S + beta).
  EXPECT_DOUBLE_EQ(staleness_factor(2.0, 5, 10), 2.0 * 10.0 / 15.0);
  EXPECT_DOUBLE_EQ(staleness_factor(1.0, 3, 4), 4.0 / 7.0);
}

TEST(StalenessFactorTest, InfiniteLimitDegeneratesToAlpha) {
  EXPECT_DOUBLE_EQ(staleness_factor(3.0, 0, kNoStalenessLimit), 3.0);
  EXPECT_DOUBLE_EQ(staleness_factor(3.0, 1000, kNoStalenessLimit), 3.0);
}

TEST(StalenessFactorTest, AlphaZeroDisablesStalenessTerm) {
  EXPECT_DOUBLE_EQ(staleness_factor(0.0, 5, 10), 0.0);
}

TEST(StalenessFactorTest, RejectsInvalidArguments) {
  EXPECT_THROW(staleness_factor(-1.0, 0, 10), Error);
  EXPECT_THROW(staleness_factor(1.0, 0, 0), Error);
}

// Property sweep: monotone decreasing in staleness, bounded by Lemma 1's
// endpoints as long as S <= beta, and increasing in alpha.
class StalenessSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(StalenessSweep, MonotoneAndBounded) {
  const auto [alpha, beta] = GetParam();
  double prev = staleness_factor(alpha, 0, beta);
  EXPECT_DOUBLE_EQ(prev, alpha);
  for (std::uint64_t s = 1; s <= beta; ++s) {
    const double g = staleness_factor(alpha, s, beta);
    EXPECT_LT(g, prev) << "not decreasing at S=" << s;
    EXPECT_GE(g, alpha / 2.0 - 1e-12) << "below Lemma-1 lower bound at " << s;
    EXPECT_LE(g, alpha + 1e-12);
    prev = g;
  }
  // Increasing in alpha at fixed staleness.
  EXPECT_LT(staleness_factor(alpha, beta / 2, beta),
            staleness_factor(alpha + 1.0, beta / 2, beta));
}

INSTANTIATE_TEST_SUITE_P(
    AlphaBetaGrid, StalenessSweep,
    ::testing::Combine(::testing::Values(0.5, 1.0, 3.0, 10.0),
                       ::testing::Values<std::uint64_t>(1, 3, 10, 12, 100)));

}  // namespace
}  // namespace seafl
