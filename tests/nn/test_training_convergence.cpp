// Convergence smoke tests: every model-zoo architecture must fit a small
// learnable synthetic task with plain SGD. Catches silent training breakage
// (e.g. a backward path that is wrong in a way gradient probing at a single
// point misses, or an init scheme that stalls optimization).
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/sgd.h"

namespace seafl {
namespace {

struct ConvergenceCase {
  ModelKind kind;
  InputSpec input;
  int epochs;
  float lr;
};

class TrainingConvergenceTest
    : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(TrainingConvergenceTest, FitsLearnableSyntheticTask) {
  const auto& p = GetParam();
  constexpr std::size_t kClasses = 4;

  PatternSpec spec;
  spec.num_samples = 80;
  spec.num_classes = kClasses;
  spec.input = p.input;
  spec.noise = 0.3;
  spec.seed = 5;
  const Dataset data = make_pattern_dataset(spec);

  auto model = make_model(p.kind, p.input, kClasses)();
  Rng rng(9);
  model->init(rng);

  Tensor x({data.size(), data.sample_numel()});
  std::vector<std::int32_t> y(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto s = data.sample(i);
    std::copy(s.begin(), s.end(), x.data() + i * data.sample_numel());
    y[i] = data.label(i);
  }

  SoftmaxCrossEntropy loss;
  Sgd sgd({.learning_rate = p.lr, .clip_norm = 5.0f});
  double first = 0.0, last = 0.0;
  for (int epoch = 0; epoch < p.epochs; ++epoch) {
    const Tensor& logits = model->forward(x, true);
    const double l = loss.forward(logits, y);
    if (epoch == 0) first = l;
    last = l;
    model->zero_grad();
    Tensor grad;
    loss.backward(grad);
    model->backward(grad);
    sgd.step(*model);
  }
  EXPECT_LT(last, first * 0.5) << model_kind_name(p.kind)
                               << ": loss " << first << " -> " << last;
  loss.forward(model->forward(x), y);
  EXPECT_GT(static_cast<double>(loss.correct()) /
                static_cast<double>(data.size()),
            0.6)
      << model_kind_name(p.kind);
}

INSTANTIATE_TEST_SUITE_P(
    ZooArchitectures, TrainingConvergenceTest,
    ::testing::Values(
        ConvergenceCase{ModelKind::kMlp, {1, 8, 8}, 60, 0.1f},
        ConvergenceCase{ModelKind::kLenetLite, {1, 8, 8}, 40, 0.05f},
        ConvergenceCase{ModelKind::kResnetLite, {1, 8, 8}, 40, 0.05f},
        ConvergenceCase{ModelKind::kVggLite, {1, 8, 8}, 40, 0.05f}));

}  // namespace
}  // namespace seafl
