#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/loss.h"

namespace seafl {
namespace {

TEST(LossTest, UniformLogitsGiveLogClasses) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 4});  // all zeros -> uniform softmax
  std::vector<std::int32_t> labels{0, 3};
  const double l = loss.forward(logits, labels);
  EXPECT_NEAR(l, std::log(4.0), 1e-6);
}

TEST(LossTest, ConfidentCorrectPredictionHasLowLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3}, {10.0f, 0.0f, 0.0f});
  std::vector<std::int32_t> labels{0};
  EXPECT_LT(loss.forward(logits, labels), 1e-3);
  EXPECT_EQ(loss.correct(), 1u);
}

TEST(LossTest, ConfidentWrongPredictionHasHighLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3}, {10.0f, 0.0f, 0.0f});
  std::vector<std::int32_t> labels{2};
  EXPECT_GT(loss.forward(logits, labels), 5.0);
  EXPECT_EQ(loss.correct(), 0u);
}

TEST(LossTest, CorrectCountsArgmaxMatches) {
  SoftmaxCrossEntropy loss;
  Tensor logits({3, 2}, {1, 0, 0, 1, 2, 1});
  std::vector<std::int32_t> labels{0, 0, 0};  // predictions: 0, 1, 0
  loss.forward(logits, labels);
  EXPECT_EQ(loss.correct(), 2u);
}

TEST(LossTest, GradientIsProbsMinusOneHotOverBatch) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3}, {1, 2, 3, 0, 0, 0});
  std::vector<std::int32_t> labels{2, 1};
  loss.forward(logits, labels);
  Tensor grad;
  loss.backward(grad);
  ASSERT_EQ(grad.shape(), logits.shape());

  const Tensor& probs = loss.probabilities();
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < 3; ++c) {
      const float expected =
          (probs[b * 3 + c] -
           (labels[b] == static_cast<std::int32_t>(c) ? 1.0f : 0.0f)) /
          2.0f;
      EXPECT_NEAR(grad[b * 3 + c], expected, 1e-6);
    }
  }
}

TEST(LossTest, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  Rng rng(7);
  Tensor logits({3, 5});
  logits.fill_normal(rng, 0.0f, 1.0f);
  std::vector<std::int32_t> labels{1, 4, 0};

  loss.forward(logits, labels);
  Tensor grad;
  loss.backward(grad);

  constexpr float kEps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + kEps;
    const double hi = loss.forward(logits, labels);
    logits[i] = saved - kEps;
    const double lo = loss.forward(logits, labels);
    logits[i] = saved;
    EXPECT_NEAR(grad[i], (hi - lo) / (2.0 * kEps), 1e-4) << "element " << i;
  }
}

TEST(LossTest, GradientRowsSumToZero) {
  // Softmax CE gradient within one sample always sums to 0.
  SoftmaxCrossEntropy loss;
  Rng rng(9);
  Tensor logits({4, 6});
  logits.fill_normal(rng, 0.0f, 2.0f);
  std::vector<std::int32_t> labels{0, 1, 2, 3};
  loss.forward(logits, labels);
  Tensor grad;
  loss.backward(grad);
  for (std::size_t b = 0; b < 4; ++b) {
    double row = 0.0;
    for (std::size_t c = 0; c < 6; ++c) row += grad[b * 6 + c];
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

TEST(LossTest, RejectsLabelOutOfRange) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  std::vector<std::int32_t> bad{3};
  EXPECT_THROW(loss.forward(logits, bad), Error);
  std::vector<std::int32_t> negative{-1};
  EXPECT_THROW(loss.forward(logits, negative), Error);
}

TEST(LossTest, RejectsBatchMismatch) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3});
  std::vector<std::int32_t> labels{0};
  EXPECT_THROW(loss.forward(logits, labels), Error);
}

TEST(LossTest, BackwardBeforeForwardThrows) {
  SoftmaxCrossEntropy loss;
  Tensor grad;
  EXPECT_THROW(loss.backward(grad), Error);
}

}  // namespace
}  // namespace seafl
