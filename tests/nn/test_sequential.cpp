#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/sequential.h"
#include "nn/sgd.h"

namespace seafl {
namespace {

Sequential make_small_net() {
  Sequential net;
  net.emplace<Dense>(4, 8);
  net.emplace<ReLU>();
  net.emplace<Dense>(8, 3);
  return net;
}

TEST(SequentialTest, ParameterCount) {
  Sequential net = make_small_net();
  EXPECT_EQ(net.num_parameters(), 4u * 8 + 8 + 8u * 3 + 3);
  EXPECT_EQ(net.num_layers(), 3u);
}

TEST(SequentialTest, ForwardShape) {
  Sequential net = make_small_net();
  Rng rng(1);
  net.init(rng);
  Tensor in({5, 4});
  in.fill_normal(rng, 0.0f, 1.0f);
  const Tensor& out = net.forward(in);
  EXPECT_EQ(out.shape(), (Shape{5, 3}));
}

TEST(SequentialTest, ParameterRoundTrip) {
  Sequential net = make_small_net();
  Rng rng(2);
  net.init(rng);
  std::vector<float> saved = net.parameter_vector();

  // Perturb then restore.
  std::vector<float> zeros(saved.size(), 0.0f);
  net.set_parameters(zeros);
  EXPECT_EQ(net.parameter_vector(), zeros);
  net.set_parameters(saved);
  EXPECT_EQ(net.parameter_vector(), saved);
}

TEST(SequentialTest, SetParametersChangesForward) {
  Sequential net = make_small_net();
  Rng rng(3);
  net.init(rng);
  Tensor in({1, 4});
  in.fill(1.0f);
  Tensor out1 = net.forward(in);

  std::vector<float> doubled = net.parameter_vector();
  for (auto& w : doubled) w *= 2.0f;
  net.set_parameters(doubled);
  Tensor out2 = net.forward(in);
  EXPECT_FALSE(out1.equals(out2));
}

TEST(SequentialTest, WrongParameterSizeThrows) {
  Sequential net = make_small_net();
  std::vector<float> tiny(3, 0.0f);
  EXPECT_THROW(net.set_parameters(tiny), Error);
  std::vector<float> small(3);
  EXPECT_THROW(net.copy_parameters_to(small), Error);
}

TEST(SequentialTest, ZeroGradClearsGradients) {
  Sequential net = make_small_net();
  Rng rng(4);
  net.init(rng);
  Tensor in({2, 4});
  in.fill_normal(rng, 0.0f, 1.0f);
  net.forward(in, /*train=*/true);
  Tensor dout({2, 3});
  dout.fill(1.0f);
  net.backward(dout);

  std::vector<float> grads(net.num_parameters());
  net.copy_gradients_to(grads);
  bool any_nonzero = false;
  for (float g : grads) any_nonzero |= g != 0.0f;
  EXPECT_TRUE(any_nonzero);

  net.zero_grad();
  net.copy_gradients_to(grads);
  for (float g : grads) EXPECT_EQ(g, 0.0f);
}

TEST(SequentialTest, EmptyModelThrowsOnForward) {
  Sequential net;
  Tensor in({1, 2});
  EXPECT_THROW(net.forward(in), Error);
}

TEST(SequentialTest, SummaryMentionsLayersAndParams) {
  Sequential net = make_small_net();
  const std::string s = net.summary();
  EXPECT_NE(s.find("3 layers"), std::string::npos);
  EXPECT_NE(s.find("Dense(4->8)"), std::string::npos);
  EXPECT_NE(s.find("ReLU"), std::string::npos);
}

TEST(SequentialTest, TrainingReducesLossOnSeparableData) {
  // Two Gaussian blobs, linearly separable: a few SGD epochs must cut the
  // loss dramatically. This is the end-to-end sanity check of forward,
  // backward, loss and optimizer working together.
  Sequential net = make_small_net();
  Rng rng(5);
  net.init(rng);

  constexpr std::size_t kN = 60;
  Tensor x({kN, 4});
  std::vector<std::int32_t> y(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const std::int32_t cls = static_cast<std::int32_t>(i % 3);
    y[i] = cls;
    for (std::size_t d = 0; d < 4; ++d) {
      x.data()[i * 4 + d] = static_cast<float>(
          rng.normal(d == static_cast<std::size_t>(cls) ? 3.0 : 0.0, 0.3));
    }
  }

  SoftmaxCrossEntropy loss;
  Sgd sgd({.learning_rate = 0.1f});
  double first = 0.0, last = 0.0;
  for (int epoch = 0; epoch < 30; ++epoch) {
    const Tensor& logits = net.forward(x, true);
    const double l = loss.forward(logits, y);
    if (epoch == 0) first = l;
    last = l;
    net.zero_grad();
    Tensor grad;
    loss.backward(grad);
    net.backward(grad);
    sgd.step(net);
  }
  EXPECT_LT(last, first * 0.2);
  // And accuracy is near-perfect.
  net.forward(x, false);
  loss.forward(net.forward(x), y);
  EXPECT_GE(loss.correct(), kN - 2);
}

TEST(SequentialTest, GradientsConcatenateInLayerOrder) {
  Sequential net;
  net.emplace<Dense>(2, 2);
  net.emplace<Dense>(2, 1);
  Rng rng(6);
  net.init(rng);
  Tensor in({1, 2});
  in.fill(1.0f);
  net.forward(in, true);
  Tensor dout({1, 1});
  dout.fill(1.0f);
  net.zero_grad();
  net.backward(dout);

  std::vector<float> flat(net.num_parameters());
  net.copy_gradients_to(flat);
  // First layer gradient block starts at offset 0 (W1 has 4 entries),
  // second layer's W2 gradient begins at offset 6 (W1 4 + b1 2).
  const Tensor& w2_grad = *net.layer(1).gradients()[0];
  EXPECT_FLOAT_EQ(flat[6], w2_grad[0]);
}

}  // namespace
}  // namespace seafl
