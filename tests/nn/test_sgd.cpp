#include <gtest/gtest.h>

#include "nn/dense.h"
#include "nn/sequential.h"
#include "nn/sgd.h"

namespace seafl {
namespace {

/// One-parameter-ish model for exact step arithmetic.
Sequential make_tiny() {
  Sequential net;
  net.emplace<Dense>(1, 1);
  return net;
}

void set_weight_and_grad(Sequential& net, float w, float g) {
  net.layer(0).parameters()[0]->span()[0] = w;
  net.layer(0).parameters()[1]->span()[0] = 0.0f;  // bias
  net.layer(0).gradients()[0]->span()[0] = g;
  net.layer(0).gradients()[1]->span()[0] = 0.0f;
}

float weight(Sequential& net) {
  return net.layer(0).parameters()[0]->span()[0];
}

TEST(SgdTest, PlainStep) {
  Sequential net = make_tiny();
  Sgd sgd({.learning_rate = 0.1f});
  set_weight_and_grad(net, 1.0f, 2.0f);
  sgd.step(net);
  EXPECT_FLOAT_EQ(weight(net), 1.0f - 0.1f * 2.0f);
}

TEST(SgdTest, WeightDecayAddsL2Term) {
  Sequential net = make_tiny();
  Sgd sgd({.learning_rate = 0.1f, .weight_decay = 0.5f});
  set_weight_and_grad(net, 2.0f, 0.0f);
  sgd.step(net);
  // p -= lr * wd * p  ->  2.0 - 0.1 * 0.5 * 2.0 = 1.9
  EXPECT_FLOAT_EQ(weight(net), 1.9f);
}

TEST(SgdTest, MomentumAccumulatesVelocity) {
  Sequential net = make_tiny();
  Sgd sgd({.learning_rate = 1.0f, .momentum = 0.5f});
  set_weight_and_grad(net, 0.0f, 1.0f);
  sgd.step(net);  // v = 1, p = -1
  EXPECT_FLOAT_EQ(weight(net), -1.0f);
  set_weight_and_grad(net, weight(net), 1.0f);
  sgd.step(net);  // v = 0.5 + 1 = 1.5, p = -2.5
  EXPECT_FLOAT_EQ(weight(net), -2.5f);
}

TEST(SgdTest, MomentumZeroMatchesPlain) {
  Sequential a = make_tiny();
  Sequential b = make_tiny();
  Sgd plain({.learning_rate = 0.2f});
  Sgd with_zero({.learning_rate = 0.2f, .momentum = 0.0f});
  set_weight_and_grad(a, 1.0f, 3.0f);
  set_weight_and_grad(b, 1.0f, 3.0f);
  plain.step(a);
  with_zero.step(b);
  EXPECT_FLOAT_EQ(weight(a), weight(b));
}

TEST(SgdTest, LearningRateOverride) {
  Sequential net = make_tiny();
  Sgd sgd({.learning_rate = 0.1f});
  sgd.set_learning_rate(0.01f);
  set_weight_and_grad(net, 1.0f, 1.0f);
  sgd.step(net);
  EXPECT_FLOAT_EQ(weight(net), 0.99f);
  EXPECT_THROW(sgd.set_learning_rate(0.0f), Error);
}

TEST(SgdTest, RejectsInvalidConfig) {
  EXPECT_THROW(Sgd({.learning_rate = 0.0f}), Error);
  EXPECT_THROW(Sgd({.learning_rate = -1.0f}), Error);
  EXPECT_THROW(Sgd({.learning_rate = 0.1f, .momentum = 1.0f}), Error);
  EXPECT_THROW(Sgd({.learning_rate = 0.1f, .weight_decay = -0.1f}), Error);
}

TEST(SgdTest, ClipNormScalesLargeGradients) {
  Sequential net = make_tiny();
  Sgd sgd({.learning_rate = 1.0f, .clip_norm = 1.0f});
  set_weight_and_grad(net, 0.0f, 10.0f);  // gradient norm 10 > clip 1
  sgd.step(net);
  // Clipped gradient is 1.0, so w = -1.
  EXPECT_FLOAT_EQ(weight(net), -1.0f);
}

TEST(SgdTest, ClipNormLeavesSmallGradientsAlone) {
  Sequential net = make_tiny();
  Sgd sgd({.learning_rate = 1.0f, .clip_norm = 5.0f});
  set_weight_and_grad(net, 0.0f, 2.0f);
  sgd.step(net);
  EXPECT_FLOAT_EQ(weight(net), -2.0f);
}

TEST(SgdTest, ClipNormUsesGlobalNormAcrossLayers) {
  Sequential net;
  net.emplace<Dense>(1, 1);
  net.emplace<Dense>(1, 1);
  // Gradient (3, 4) across layers has global norm 5; clip to 1 scales both
  // components by 1/5.
  net.layer(0).parameters()[0]->span()[0] = 0.0f;
  net.layer(1).parameters()[0]->span()[0] = 0.0f;
  net.layer(0).parameters()[1]->span()[0] = 0.0f;
  net.layer(1).parameters()[1]->span()[0] = 0.0f;
  net.layer(0).gradients()[0]->span()[0] = 3.0f;
  net.layer(1).gradients()[0]->span()[0] = 4.0f;
  net.layer(0).gradients()[1]->span()[0] = 0.0f;
  net.layer(1).gradients()[1]->span()[0] = 0.0f;
  Sgd sgd({.learning_rate = 1.0f, .clip_norm = 1.0f});
  sgd.step(net);
  EXPECT_NEAR(net.layer(0).parameters()[0]->span()[0], -0.6f, 1e-6);
  EXPECT_NEAR(net.layer(1).parameters()[0]->span()[0], -0.8f, 1e-6);
}

TEST(SgdTest, ClipNormRejectsNegative) {
  EXPECT_THROW(Sgd({.learning_rate = 0.1f, .clip_norm = -1.0f}), Error);
}

TEST(SgdTest, FrozenPrefixLayersAreNotUpdated) {
  Sequential net;
  net.emplace<Dense>(2, 2);
  net.emplace<Dense>(2, 2);
  Rng rng(2);
  net.init(rng);
  const auto before = net.parameter_vector();
  for (std::size_t li = 0; li < net.num_layers(); ++li)
    for (Tensor* g : net.layer(li).gradients()) g->fill(1.0f);
  Sgd sgd({.learning_rate = 0.5f});
  sgd.step(net, /*frozen_layers=*/1);

  // First layer (W 4 + b 2 = 6 scalars) unchanged, second layer stepped.
  const auto after = net.parameter_vector();
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(after[i], before[i]);
  for (std::size_t i = 6; i < after.size(); ++i)
    EXPECT_FLOAT_EQ(after[i], before[i] - 0.5f);
}

TEST(SgdTest, FreezingAllLayersThrows) {
  Sequential net = make_tiny();
  Sgd sgd({.learning_rate = 0.1f});
  EXPECT_THROW(sgd.step(net, 1), Error);
}

TEST(SgdTest, StepsAllLayers) {
  Sequential net;
  net.emplace<Dense>(2, 2);
  net.emplace<Dense>(2, 2);
  Rng rng(1);
  net.init(rng);
  const auto before = net.parameter_vector();
  // Set all gradients to 1.
  for (std::size_t li = 0; li < net.num_layers(); ++li)
    for (Tensor* g : net.layer(li).gradients()) g->fill(1.0f);
  Sgd sgd({.learning_rate = 0.5f});
  sgd.step(net);
  const auto after = net.parameter_vector();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_FLOAT_EQ(after[i], before[i] - 0.5f);
}

}  // namespace
}  // namespace seafl
