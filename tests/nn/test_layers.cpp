#include <gtest/gtest.h>

#include "gradient_check.h"
#include "nn/activations.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/residual.h"

namespace seafl {
namespace {

using seafl::testing::check_layer_gradients;

Tensor random_input(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  t.fill_normal(rng, 0.0f, 1.0f);
  return t;
}

/// Pushes every element away from zero so kinked layers (ReLU, MaxPool) are
/// locally smooth under finite-difference probing.
Tensor away_from_kinks(Tensor t, float margin = 0.15f) {
  for (std::size_t i = 0; i < t.numel(); ++i) {
    if (t[i] >= 0.0f && t[i] < margin) t[i] += margin;
    if (t[i] < 0.0f && t[i] > -margin) t[i] -= margin;
  }
  return t;
}

ConvGeom make_geom(std::size_t c, std::size_t h, std::size_t w, std::size_t k,
                   std::size_t s, std::size_t p) {
  ConvGeom g;
  g.channels = c;
  g.height = h;
  g.width = w;
  g.kernel_h = k;
  g.kernel_w = k;
  g.stride = s;
  g.pad = p;
  return g;
}

// ------------------------------------------------------------------- Dense

TEST(DenseTest, ForwardComputesAffineMap) {
  Dense dense(2, 2);
  // W = [[1, 2], [3, 4]], b = [10, 20].
  dense.parameters()[0]->span()[0] = 1;
  dense.parameters()[0]->span()[1] = 2;
  dense.parameters()[0]->span()[2] = 3;
  dense.parameters()[0]->span()[3] = 4;
  dense.parameters()[1]->span()[0] = 10;
  dense.parameters()[1]->span()[1] = 20;

  Tensor in({1, 2}, {1, 1});
  Tensor out;
  dense.forward(in, out, false);
  // y = W x + b = [1+2+10, 3+4+20].
  EXPECT_FLOAT_EQ(out[0], 13.0f);
  EXPECT_FLOAT_EQ(out[1], 27.0f);
}

TEST(DenseTest, BatchedForwardShape) {
  Dense dense(8, 3);
  Rng rng(1);
  dense.init(rng);
  Tensor in = random_input({5, 8}, 2);
  Tensor out;
  dense.forward(in, out, false);
  EXPECT_EQ(out.shape(), (Shape{5, 3}));
}

TEST(DenseTest, GradientCheck) {
  Dense dense(4, 3);
  Rng rng(3);
  dense.init(rng);
  check_layer_gradients(dense, random_input({2, 4}, 4));
}

TEST(DenseTest, GradientsAccumulateAcrossBackwardCalls) {
  Dense dense(2, 2);
  Rng rng(5);
  dense.init(rng);
  Tensor in = random_input({1, 2}, 6);
  Tensor out, din;
  dense.forward(in, out, true);
  Tensor ones(out.shape());
  ones.fill(1.0f);
  dense.zero_grad();
  dense.backward(ones, din);
  const float g1 = (*dense.gradients()[0])[0];
  dense.backward(ones, din);
  EXPECT_FLOAT_EQ((*dense.gradients()[0])[0], 2.0f * g1);
}

TEST(DenseTest, HeInitHasPlausibleScale) {
  Dense dense(1000, 10);
  Rng rng(7);
  dense.init(rng);
  double sq = 0.0;
  const Tensor& w = *dense.parameters()[0];
  for (std::size_t i = 0; i < w.numel(); ++i) sq += w[i] * w[i];
  const double stddev = std::sqrt(sq / w.numel());
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 1000.0), 0.005);
  // Bias starts at zero.
  const Tensor& b = *dense.parameters()[1];
  for (std::size_t i = 0; i < b.numel(); ++i) EXPECT_EQ(b[i], 0.0f);
}

TEST(DenseTest, RejectsBadInputSize) {
  Dense dense(4, 2);
  Tensor in({1, 3});
  Tensor out;
  EXPECT_THROW(dense.forward(in, out, false), Error);
}

// ------------------------------------------------------------------ Conv2d

TEST(Conv2dTest, KnownConvolution) {
  // 1-channel 3x3 image, one 2x2 filter of all ones, no pad: output is the
  // 2x2 window sums.
  Conv2d conv(make_geom(1, 3, 3, 2, 1, 0), 1);
  conv.parameters()[0]->fill(1.0f);
  conv.parameters()[1]->fill(0.0f);
  Tensor in({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor out;
  conv.forward(in, out, false);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out[0], 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(out[1], 2 + 3 + 5 + 6);
  EXPECT_FLOAT_EQ(out[2], 4 + 5 + 7 + 8);
  EXPECT_FLOAT_EQ(out[3], 5 + 6 + 8 + 9);
}

TEST(Conv2dTest, BiasBroadcastsPerChannel) {
  Conv2d conv(make_geom(1, 2, 2, 1, 1, 0), 2);
  conv.parameters()[0]->fill(0.0f);
  conv.parameters()[1]->span()[0] = 1.5f;
  conv.parameters()[1]->span()[1] = -2.5f;
  Tensor in({1, 1, 2, 2});
  Tensor out;
  conv.forward(in, out, false);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out[i], 1.5f);
  for (int i = 4; i < 8; ++i) EXPECT_FLOAT_EQ(out[i], -2.5f);
}

class ConvGradientTest : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(ConvGradientTest, GradientCheck) {
  const ConvGeom g = GetParam();
  Conv2d conv(g, 2);
  Rng rng(11);
  conv.init(rng);
  check_layer_gradients(
      conv, random_input({2, g.channels, g.height, g.width}, 12));
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGradientTest,
                         ::testing::Values(make_geom(1, 4, 4, 3, 1, 0),
                                           make_geom(2, 4, 4, 3, 1, 1),
                                           make_geom(3, 5, 5, 3, 2, 1),
                                           make_geom(1, 6, 6, 5, 1, 2)));

TEST(Conv2dTest, BatchIndependence) {
  // Processing two samples in one batch equals processing them separately.
  Conv2d conv(make_geom(2, 4, 4, 3, 1, 1), 3);
  Rng rng(13);
  conv.init(rng);
  Tensor batch = random_input({2, 2, 4, 4}, 14);
  Tensor out_batch;
  conv.forward(batch, out_batch, false);

  const std::size_t sample = 2 * 4 * 4;
  for (std::size_t b = 0; b < 2; ++b) {
    Tensor single({1, 2, 4, 4});
    std::copy(batch.data() + b * sample, batch.data() + (b + 1) * sample,
              single.data());
    Tensor out_single;
    conv.forward(single, out_single, false);
    for (std::size_t i = 0; i < out_single.numel(); ++i)
      ASSERT_FLOAT_EQ(out_single[i], out_batch[b * out_single.numel() + i]);
  }
}

// --------------------------------------------------------------- MaxPool2d

TEST(MaxPoolTest, SelectsWindowMaxima) {
  MaxPool2d pool(make_geom(1, 4, 4, 2, 2, 0));
  Tensor in({1, 1, 4, 4},
            {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  Tensor out;
  pool.forward(in, out, false);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out[0], 6);
  EXPECT_FLOAT_EQ(out[1], 8);
  EXPECT_FLOAT_EQ(out[2], 14);
  EXPECT_FLOAT_EQ(out[3], 16);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(make_geom(1, 2, 2, 2, 2, 0));
  Tensor in({1, 1, 2, 2}, {1, 9, 3, 4});
  Tensor out, din;
  pool.forward(in, out, true);
  Tensor dout({1, 1, 1, 1}, {5.0f});
  pool.backward(dout, din);
  EXPECT_EQ(din.shape(), in.shape());
  EXPECT_FLOAT_EQ(din[0], 0);
  EXPECT_FLOAT_EQ(din[1], 5);
  EXPECT_FLOAT_EQ(din[2], 0);
  EXPECT_FLOAT_EQ(din[3], 0);
}

TEST(MaxPoolTest, GradientCheck) {
  MaxPool2d pool(make_geom(1, 4, 4, 2, 2, 0));
  // Distinct, well-separated values keep the argmax stable under probing.
  Tensor in({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i)
    in[i] = static_cast<float>(i % 7) * 1.7f + static_cast<float>(i) * 0.31f;
  check_layer_gradients(pool, in);
}

TEST(MaxPoolTest, RaggedEdgeWindows) {
  // 3x3 input with 2x2/stride-2 pooling truncates the last row/col windows.
  MaxPool2d pool(make_geom(1, 3, 3, 2, 2, 0));
  Tensor in({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor out;
  pool.forward(in, out, false);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0], 5);
}

// ----------------------------------------------------------- GlobalAvgPool

TEST(GlobalAvgPoolTest, AveragesEachChannel) {
  GlobalAvgPool pool(2, 2, 2);
  Tensor in({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor out;
  pool.forward(in, out, false);
  EXPECT_EQ(out.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[1], 25.0f);
}

TEST(GlobalAvgPoolTest, GradientCheck) {
  GlobalAvgPool pool(2, 3, 3);
  check_layer_gradients(pool, random_input({2, 2, 3, 3}, 15));
}

// ------------------------------------------------------------- Activations

TEST(ReLUTest, ForwardClampsNegatives) {
  ReLU relu;
  Tensor in({4}, {-1, 0, 2, -3});
  Tensor out;
  relu.forward(in, out, false);
  EXPECT_FLOAT_EQ(out[0], 0);
  EXPECT_FLOAT_EQ(out[2], 2);
}

TEST(ReLUTest, GradientCheck) {
  ReLU relu;
  check_layer_gradients(relu, away_from_kinks(random_input({3, 5}, 16)));
}

TEST(TanhTest, ForwardValues) {
  Tanh tanh_layer;
  Tensor in({2}, {0.0f, 100.0f});
  Tensor out;
  tanh_layer.forward(in, out, false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_NEAR(out[1], 1.0f, 1e-6);
}

TEST(TanhTest, GradientCheck) {
  Tanh tanh_layer;
  check_layer_gradients(tanh_layer, random_input({2, 6}, 17));
}

TEST(FlattenTest, ReshapesAndRestores) {
  Flatten flatten;
  Tensor in = random_input({2, 3, 4, 5}, 18);
  Tensor out;
  flatten.forward(in, out, true);
  EXPECT_EQ(out.shape(), (Shape{2, 60}));
  Tensor dout = out, din;
  flatten.backward(dout, din);
  EXPECT_EQ(din.shape(), (Shape{2, 3, 4, 5}));
}

TEST(DropoutTest, InferenceIsIdentity) {
  Dropout drop(0.5f);
  Tensor in = random_input({2, 10}, 30);
  Tensor out;
  drop.forward(in, out, /*train=*/false);
  EXPECT_TRUE(out.equals(in));
}

TEST(DropoutTest, TrainDropsAndRescales) {
  Dropout drop(0.5f, /*seed=*/3);
  Tensor in({1, 1000});
  in.fill(1.0f);
  Tensor out;
  drop.forward(in, out, /*train=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(out[i], 2.0f);  // survivors scaled by 1/(1-p)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.06);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout drop(0.3f, 7);
  Tensor in = random_input({1, 50}, 31);
  Tensor out, din;
  drop.forward(in, out, true);
  Tensor dout({1, 50});
  dout.fill(1.0f);
  drop.backward(dout, din);
  const float scale = 1.0f / 0.7f;
  for (std::size_t i = 0; i < 50; ++i) {
    if (out[i] == 0.0f) {
      EXPECT_FLOAT_EQ(din[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(din[i], scale);
    }
  }
}

TEST(DropoutTest, ZeroProbabilityIsIdentityEvenInTraining) {
  Dropout drop(0.0f);
  Tensor in = random_input({2, 8}, 32);
  Tensor out;
  drop.forward(in, out, true);
  EXPECT_TRUE(out.equals(in));
}

TEST(DropoutTest, RejectsInvalidProbability) {
  EXPECT_THROW(Dropout(1.0f), Error);
  EXPECT_THROW(Dropout(-0.1f), Error);
}

TEST(DropoutTest, BackwardWithoutTrainForwardThrows) {
  Dropout drop(0.5f);
  Tensor in = random_input({1, 4}, 33);
  Tensor out, din;
  drop.forward(in, out, false);
  Tensor dout({1, 4});
  EXPECT_THROW(drop.backward(dout, din), Error);
}

// ---------------------------------------------------------- ResidualBlock

TEST(ResidualBlockTest, ZeroWeightsActAsReLUIdentity) {
  // With conv weights at zero the block computes ReLU(0 + x) = ReLU(x).
  ResidualBlock block(2, 4, 4);
  for (Tensor* p : block.parameters()) p->fill(0.0f);
  Tensor in = random_input({1, 2, 4, 4}, 19);
  Tensor out;
  block.forward(in, out, false);
  for (std::size_t i = 0; i < in.numel(); ++i)
    EXPECT_FLOAT_EQ(out[i], std::max(0.0f, in[i]));
}

TEST(ResidualBlockTest, ParameterCountMatchesTwoConvs) {
  ResidualBlock block(4, 6, 6);
  std::size_t total = 0;
  for (Tensor* p : block.parameters()) total += p->numel();
  // Two 3x3 convs, 4->4 channels, each with bias: 2 * (4*4*9 + 4).
  EXPECT_EQ(total, 2u * (4u * 4u * 9u + 4u));
  EXPECT_EQ(block.parameters().size(), block.gradients().size());
}

TEST(ResidualBlockTest, GradientCheck) {
  ResidualBlock block(2, 3, 3);
  Rng rng(20);
  block.init(rng);
  // Smaller probe step than the default: the block's internal ReLUs see
  // conv outputs we cannot pre-shift away from their kinks.
  check_layer_gradients(block, away_from_kinks(random_input({1, 2, 3, 3}, 21)),
                        /*seed=*/99, /*tol=*/3e-2, /*eps=*/2e-3f);
}

TEST(ResidualBlockTest, PreservesShape) {
  ResidualBlock block(3, 5, 7);
  Rng rng(22);
  block.init(rng);
  Tensor in = random_input({4, 3, 5, 7}, 23);
  Tensor out;
  block.forward(in, out, false);
  EXPECT_EQ(out.shape(), in.shape());
}

}  // namespace
}  // namespace seafl
