#include <gtest/gtest.h>

#include "nn/model_zoo.h"

namespace seafl {
namespace {

constexpr InputSpec kMono{1, 12, 12};
constexpr InputSpec kColor{3, 12, 12};

TEST(ModelKindTest, NameRoundTrip) {
  for (const auto kind : {ModelKind::kMlp, ModelKind::kLenetLite,
                          ModelKind::kResnetLite, ModelKind::kVggLite}) {
    EXPECT_EQ(parse_model_kind(model_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_model_kind("resnet18"), Error);
}

struct ZooCase {
  ModelKind kind;
  InputSpec input;
  std::size_t classes;
};

class ModelZooTest : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ModelZooTest, FactoryBuildsWorkingModel) {
  const auto& p = GetParam();
  const ModelFactory factory = make_model(p.kind, p.input, p.classes);
  auto model = factory();
  ASSERT_NE(model, nullptr);
  EXPECT_GT(model->num_parameters(), 0u);

  Rng rng(1);
  model->init(rng);
  Tensor in({2, p.input.numel()});
  in.fill_normal(rng, 0.0f, 1.0f);
  const Tensor& out = model->forward(in);
  EXPECT_EQ(out.numel(), 2u * p.classes);

  // Backward runs without error and produces finite gradients.
  model->forward(in, true);
  Tensor dout({2, p.classes});
  dout.fill(0.1f);
  model->zero_grad();
  model->backward(dout);
  std::vector<float> grads(model->num_parameters());
  model->copy_gradients_to(grads);
  bool any = false;
  for (float g : grads) {
    ASSERT_TRUE(std::isfinite(g));
    any |= g != 0.0f;
  }
  EXPECT_TRUE(any);
}

TEST_P(ModelZooTest, FreshInstancesShareArchitecture) {
  const auto& p = GetParam();
  const ModelFactory factory = make_model(p.kind, p.input, p.classes);
  auto a = factory();
  auto b = factory();
  EXPECT_EQ(a->num_parameters(), b->num_parameters());
  EXPECT_EQ(a->summary(), b->summary());
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ModelZooTest,
    ::testing::Values(ZooCase{ModelKind::kMlp, {1, 1, 32}, 10},
                      ZooCase{ModelKind::kLenetLite, kMono, 10},
                      ZooCase{ModelKind::kLenetLite, kColor, 10},
                      ZooCase{ModelKind::kResnetLite, kColor, 10},
                      ZooCase{ModelKind::kVggLite, kColor, 10},
                      ZooCase{ModelKind::kMlp, {1, 1, 8}, 2}));

TEST(ModelZooTest, InitIsSeedDeterministic) {
  const ModelFactory factory = make_model(ModelKind::kLenetLite, kMono, 10);
  auto a = factory();
  auto b = factory();
  Rng ra(42), rb(42);
  a->init(ra);
  b->init(rb);
  EXPECT_EQ(a->parameter_vector(), b->parameter_vector());
}

TEST(ModelZooTest, FlopsOrderingMatchesPaperModels) {
  // The paper's cost ordering LeNet < ResNet < VGG must be preserved by the
  // estimates the device time model consumes (DESIGN.md §1).
  const double mlp = estimate_flops_per_sample(ModelKind::kMlp, kColor, 10);
  const double lenet =
      estimate_flops_per_sample(ModelKind::kLenetLite, kColor, 10);
  const double resnet =
      estimate_flops_per_sample(ModelKind::kResnetLite, kColor, 10);
  const double vgg =
      estimate_flops_per_sample(ModelKind::kVggLite, kColor, 10);
  EXPECT_LT(mlp, lenet);
  EXPECT_LT(lenet, resnet);
  EXPECT_GT(vgg, lenet);
  EXPECT_GT(resnet, 0.0);
}

TEST(ModelZooTest, MlpHiddenWidthControlsSize) {
  const auto narrow = make_model(ModelKind::kMlp, {1, 1, 16}, 4, 8)();
  const auto wide = make_model(ModelKind::kMlp, {1, 1, 16}, 4, 64)();
  EXPECT_LT(narrow->num_parameters(), wide->num_parameters());
}

TEST(ModelZooTest, RejectsTooSmallInputs) {
  EXPECT_THROW(make_lenet_lite({1, 4, 4}, 10), Error);
  EXPECT_THROW(make_resnet_lite({3, 4, 4}, 10), Error);
  EXPECT_THROW(make_vgg_lite({3, 4, 4}, 10), Error);
}

}  // namespace
}  // namespace seafl
