#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/model_zoo.h"
#include "nn/serialize.h"

namespace seafl {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTripPreservesWeights) {
  const std::vector<float> weights{1.5f, -2.25f, 0.0f, 3.14159f};
  const std::string path = temp_path("model_roundtrip.bin");
  save_model_vector(weights, path);
  EXPECT_EQ(load_model_vector(path), weights);
  std::remove(path.c_str());
}

TEST(SerializeTest, EmptyModelRoundTrips) {
  const std::string path = temp_path("model_empty.bin");
  save_model_vector({}, path);
  EXPECT_TRUE(load_model_vector(path).empty());
  std::remove(path.c_str());
}

TEST(SerializeTest, TrainedModelRestoresIntoFreshInstance) {
  const ModelFactory factory = make_model(ModelKind::kMlp, {1, 1, 16}, 4);
  auto model = factory();
  Rng rng(3);
  model->init(rng);
  const auto original = model->parameter_vector();

  const std::string path = temp_path("model_mlp.bin");
  save_model_vector(original, path);

  auto fresh = factory();
  fresh->set_parameters(load_model_vector(path));
  EXPECT_EQ(fresh->parameter_vector(), original);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_model_vector(temp_path("does_not_exist.bin")), Error);
}

TEST(SerializeTest, BadMagicThrows) {
  const std::string path = temp_path("not_a_model.bin");
  std::ofstream(path) << "definitely not a model file";
  EXPECT_THROW(load_model_vector(path), Error);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedPayloadThrows) {
  const std::string path = temp_path("model_trunc.bin");
  save_model_vector({1, 2, 3, 4, 5, 6, 7, 8}, path);
  // Chop off the tail of the payload.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() - 8));
  out.close();
  EXPECT_THROW(load_model_vector(path), Error);
  std::remove(path.c_str());
}

TEST(SerializeTest, UnwritablePathThrows) {
  EXPECT_THROW(save_model_vector({1.0f}, "/nonexistent-dir/x.bin"), Error);
}

}  // namespace
}  // namespace seafl
