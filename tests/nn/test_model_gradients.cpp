// End-to-end gradient verification: finite differences through every model
// zoo architecture composed with the softmax-cross-entropy loss. This is
// the strongest single correctness check of the training substrate — any
// indexing error in conv/pool/residual backward shows up here.
#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/model_zoo.h"

namespace seafl {
namespace {

struct GradCase {
  ModelKind kind;
  InputSpec input;
  std::size_t classes;
};

class ModelGradientTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(ModelGradientTest, AnalyticMatchesFiniteDifference) {
  const auto& p = GetParam();
  auto model = make_model(p.kind, p.input, p.classes)();
  Rng rng(17);
  model->init(rng);

  constexpr std::size_t kBatch = 3;
  Tensor x({kBatch, p.input.numel()});
  x.fill_normal(rng, 0.0f, 1.0f);
  std::vector<std::int32_t> y(kBatch);
  for (std::size_t b = 0; b < kBatch; ++b)
    y[b] = static_cast<std::int32_t>(b % p.classes);

  SoftmaxCrossEntropy loss;
  auto objective = [&] {
    return loss.forward(model->forward(x, false), y);
  };

  // Analytic gradients.
  loss.forward(model->forward(x, true), y);
  Tensor logit_grad;
  loss.backward(logit_grad);
  model->zero_grad();
  model->backward(logit_grad);
  std::vector<float> analytic(model->num_parameters());
  model->copy_gradients_to(analytic);

  // Probe a deterministic sample of parameters (full sweeps are too slow
  // for the conv nets); always include the first and last parameters.
  std::vector<float> params(model->num_parameters());
  model->copy_parameters_to(params);
  const std::size_t n = params.size();
  std::vector<std::size_t> probes{0, n - 1};
  Rng probe_rng(23);
  for (int i = 0; i < 40; ++i) probes.push_back(probe_rng.uniform_int(n));

  // Small probe step: deep ReLU nets have kinks everywhere, and a large
  // step frequently flips an activation between the two probes.
  constexpr float kEps = 3e-4f;
  for (const std::size_t i : probes) {
    const float saved = params[i];
    params[i] = saved + kEps;
    model->set_parameters(params);
    const double hi = objective();
    params[i] = saved - kEps;
    model->set_parameters(params);
    const double lo = objective();
    params[i] = saved;
    const double numeric = (hi - lo) / (2.0 * kEps);
    // Absolute floor plus a relative term: float32 forward noise and ReLU
    // curvature grow with gradient magnitude, while real indexing bugs
    // produce order-of-magnitude disagreements.
    const double tol = 2e-2 + 0.08 * std::abs(analytic[i]);
    ASSERT_NEAR(analytic[i], numeric, tol)
        << model_kind_name(p.kind) << " parameter " << i;
  }
  model->set_parameters(params);
}

INSTANTIATE_TEST_SUITE_P(
    ZooArchitectures, ModelGradientTest,
    ::testing::Values(GradCase{ModelKind::kMlp, {1, 1, 16}, 4},
                      GradCase{ModelKind::kLenetLite, {1, 8, 8}, 4},
                      GradCase{ModelKind::kLenetLite, {3, 8, 8}, 6},
                      GradCase{ModelKind::kResnetLite, {3, 8, 8}, 4},
                      GradCase{ModelKind::kVggLite, {3, 8, 8}, 4}));

}  // namespace
}  // namespace seafl
