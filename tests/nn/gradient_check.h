// Finite-difference gradient checking for Layer implementations.
//
// Scalar objective: f = <layer(input), P> with a fixed random projection P.
// Analytic gradients come from backward(P); numeric gradients from central
// differences on every parameter and input element.
#pragma once

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layer.h"
#include "tensor/ops.h"

namespace seafl::testing {

inline double objective(Layer& layer, const Tensor& input,
                        const Tensor& projection) {
  Tensor out;
  layer.forward(input, out, /*train=*/false);
  return dot(out.span(), projection.span());
}

/// Runs the forward to size the projection, computes analytic gradients, and
/// compares them to central differences. `tol` is the max absolute error
/// (gradients here are O(1) with the default N(0,1) data).
inline void check_layer_gradients(Layer& layer, Tensor input,
                                  std::uint64_t seed = 99,
                                  double tol = 2e-2,
                                  float eps = 1e-2f) {
  Rng rng(seed);

  Tensor out;
  layer.forward(input, out, /*train=*/true);
  Tensor projection(out.shape());
  projection.fill_normal(rng, 0.0f, 1.0f);

  layer.zero_grad();
  Tensor input_grad;
  layer.backward(projection, input_grad);
  ASSERT_EQ(input_grad.numel(), input.numel());

  // Copy analytic gradients before numeric probing perturbs state.
  std::vector<std::vector<float>> param_grads;
  for (Tensor* g : layer.gradients())
    param_grads.emplace_back(g->data(), g->data() + g->numel());
  const std::vector<float> analytic_input(input_grad.data(),
                                          input_grad.data() +
                                              input_grad.numel());

  // Numeric parameter gradients.
  const auto params = layer.parameters();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = *params[pi];
    for (std::size_t i = 0; i < p.numel(); ++i) {
      const float saved = p[i];
      p[i] = saved + eps;
      const double hi = objective(layer, input, projection);
      p[i] = saved - eps;
      const double lo = objective(layer, input, projection);
      p[i] = saved;
      const double numeric = (hi - lo) / (2.0 * eps);
      ASSERT_NEAR(param_grads[pi][i], numeric, tol)
          << "param " << pi << " element " << i;
    }
  }

  // Numeric input gradients.
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const float saved = input[i];
    input[i] = saved + eps;
    const double hi = objective(layer, input, projection);
    input[i] = saved - eps;
    const double lo = objective(layer, input, projection);
    input[i] = saved;
    const double numeric = (hi - lo) / (2.0 * eps);
    ASSERT_NEAR(analytic_input[i], numeric, tol) << "input element " << i;
  }
}

}  // namespace seafl::testing
