// Deployment-mode integration (DESIGN.md §13): a DeployServer and several
// DeployClients exchanging real frames over real localhost sockets, each in
// its own thread — the in-process analogue of `seafl_server --listen` plus N
// `seafl_client` processes. Asserts rounds complete, the trace journal
// records dispatch→upload lifecycles, and a client crashing mid-round is
// detected and its slot re-dispatched.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <thread>
#include <vector>

#include "core/seafl.h"

namespace seafl {
namespace {

std::size_t count_kind(const obs::TraceJournal& journal,
                       obs::TraceEventKind kind) {
  return static_cast<std::size_t>(
      std::count_if(journal.events().begin(), journal.events().end(),
                    [kind](const obs::TraceEvent& e) { return e.kind == kind; }));
}

std::size_t count_kind_for_client(const obs::TraceJournal& journal,
                                  obs::TraceEventKind kind,
                                  std::size_t client) {
  return static_cast<std::size_t>(std::count_if(
      journal.events().begin(), journal.events().end(),
      [kind, client](const obs::TraceEvent& e) {
        return e.kind == kind && e.client == client;
      }));
}

FlTask small_task(std::size_t num_clients) {
  TaskSpec spec;
  spec.name = "synth-mnist";
  spec.num_clients = num_clients;
  spec.samples_per_client = 24;
  spec.test_samples = 60;
  spec.seed = 7;
  return make_task(spec);
}

Arm small_arm(std::size_t concurrency) {
  ExperimentParams params;
  params.buffer_size = 2;
  params.concurrency = concurrency;
  params.local_epochs = 1;
  params.batch_size = 8;
  params.max_rounds = 3;
  params.stop_at_target = false;
  params.seed = 7;
  return make_arm("seafl", params);
}

TEST(Loopback, ThreeClientsCompleteThreeRounds) {
  constexpr std::size_t kClients = 3;
  const FlTask task = small_task(kClients);
  const ModelFactory model =
      make_model(task.default_model, task.input, task.num_classes);
  Arm arm = small_arm(/*concurrency=*/3);

  DeployServerOptions opts;
  opts.port = 0;
  opts.expected_clients = kClients;
  opts.max_wall_seconds = 60.0;  // hang backstop; never the intended exit
  DeployServer server(task, model, std::move(arm.strategy), arm.config, opts);
  const std::uint16_t port = server.port();
  ASSERT_NE(port, 0);

  std::array<DeployClientStats, kClients> stats;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      DeployClientOptions copt;
      copt.client_id = i;
      copt.port = port;
      DeployClient client(task, model, arm.config, copt);
      stats[i] = client.run();
    });
  }
  const RunResult res = server.run();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(res.rounds, 3u);
  EXPECT_GE(res.model_uploads, 6u);  // 3 rounds x K=2, plus any extras
  EXPECT_EQ(res.client_crashes, 0u);
  EXPECT_TRUE(std::isfinite(res.final_accuracy));
  EXPECT_GE(res.curve.size(), 2u);  // baseline + at least one round eval

  // Journal lifecycle: every upload follows a dispatch of the same client,
  // every aggregation is journaled, and upload counts agree exactly.
  const obs::TraceJournal& journal = server.journal();
  EXPECT_EQ(count_kind(journal, obs::TraceEventKind::kUpload),
            res.model_uploads);
  EXPECT_EQ(count_kind(journal, obs::TraceEventKind::kAggregate), res.rounds);
  EXPECT_GE(count_kind(journal, obs::TraceEventKind::kAssigned),
            count_kind(journal, obs::TraceEventKind::kUpload));
  for (std::size_t i = 0; i < kClients; ++i) {
    EXPECT_GE(
        count_kind_for_client(journal, obs::TraceEventKind::kAssigned, i),
        count_kind_for_client(journal, obs::TraceEventKind::kUpload, i))
        << "client " << i;
  }

  for (std::size_t i = 0; i < kClients; ++i) {
    EXPECT_TRUE(stats[i].shutdown_received) << "client " << i;
    EXPECT_GE(stats[i].dispatches, 1u) << "client " << i;
    EXPECT_FALSE(stats[i].crashed) << "client " << i;
  }
  EXPECT_GE(server.socket_stats().frames_received, res.model_uploads);
  EXPECT_EQ(server.socket_stats().protocol_errors, 0u);
}

TEST(Loopback, CompressedUploadsRoundTripAndAccountExactly) {
  // ISSUE 7 acceptance: with a codec on, the loopback run completes and the
  // server-logged bytes-on-wire equal Codec::encoded_bytes_for exactly —
  // the sockets carried precisely the container bytes the codec produced.
  constexpr std::size_t kClients = 3;
  const FlTask task = small_task(kClients);
  const ModelFactory model =
      make_model(task.default_model, task.input, task.num_classes);
  Arm arm = small_arm(/*concurrency=*/3);
  compress::apply_codec_name(arm.config.compression, "int8");

  DeployServerOptions opts;
  opts.port = 0;
  opts.expected_clients = kClients;
  opts.max_wall_seconds = 60.0;
  DeployServer server(task, model, std::move(arm.strategy), arm.config, opts);
  const std::uint16_t port = server.port();
  ASSERT_NE(port, 0);

  std::array<DeployClientStats, kClients> stats;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      DeployClientOptions copt;
      copt.client_id = i;
      copt.port = port;
      DeployClient client(task, model, arm.config, copt);
      stats[i] = client.run();
    });
  }
  const RunResult res = server.run();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(res.rounds, 3u);
  EXPECT_EQ(res.client_crashes, 0u);
  EXPECT_TRUE(std::isfinite(res.final_accuracy));
  for (std::size_t i = 0; i < kClients; ++i) {
    EXPECT_TRUE(stats[i].shutdown_received) << "client " << i;
    EXPECT_GE(stats[i].uploads, 1u) << "client " << i;
  }

  const std::size_t dim = model()->num_parameters();
  const auto codec = compress::make_codec(arm.config.compression);
  EXPECT_EQ(res.upload_wire_bytes, res.model_uploads * codec->encoded_bytes_for(dim));
  EXPECT_EQ(res.upload_raw_bytes,
            res.model_uploads * compress::transfer_bytes(dim, 0));
  EXPECT_LT(res.upload_wire_bytes, res.upload_raw_bytes);

  // Every accepted upload was journaled as a compressed arrival.
  const obs::TraceJournal& journal = server.journal();
  EXPECT_EQ(count_kind(journal, obs::TraceEventKind::kCompressed),
            res.model_uploads);
  EXPECT_EQ(count_kind(journal, obs::TraceEventKind::kUpload),
            res.model_uploads);
  EXPECT_EQ(server.socket_stats().protocol_errors, 0u);
}

TEST(Loopback, CrashedClientIsDetectedAndSlotRedispatched) {
  constexpr std::size_t kClients = 4;
  const FlTask task = small_task(kClients);
  const ModelFactory model =
      make_model(task.default_model, task.input, task.num_classes);
  Arm arm = small_arm(/*concurrency=*/3);

  DeployServerOptions opts;
  opts.port = 0;
  opts.expected_clients = kClients;
  opts.max_wall_seconds = 60.0;
  DeployServer server(task, model, std::move(arm.strategy), arm.config, opts);
  const std::uint16_t port = server.port();

  std::array<DeployClientStats, kClients> stats;
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      DeployClientOptions copt;
      copt.client_id = i;
      copt.port = port;
      // Client 0 dies abruptly on its first dispatch, mid-round: the server
      // must notice the EOF, count the crash and hand the slot on.
      if (i == 0) copt.crash_after_dispatches = 1;
      DeployClient client(task, model, arm.config, copt);
      stats[i] = client.run();
    });
  }
  const RunResult res = server.run();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(res.rounds, 3u);  // the run survives the crash
  EXPECT_GE(res.client_crashes, 1u);
  EXPECT_GE(res.redispatches, 1u);
  EXPECT_TRUE(stats[0].crashed);
  EXPECT_FALSE(stats[0].shutdown_received);
  EXPECT_EQ(stats[0].uploads, 0u);

  const obs::TraceJournal& journal = server.journal();
  EXPECT_GE(count_kind(journal, obs::TraceEventKind::kCrash), 1u);
  EXPECT_GE(count_kind(journal, obs::TraceEventKind::kRedispatch), 1u);
  EXPECT_EQ(count_kind(journal, obs::TraceEventKind::kAggregate), res.rounds);
  // The crashed client never uploaded anything the server accepted.
  EXPECT_EQ(count_kind_for_client(journal, obs::TraceEventKind::kUpload, 0),
            0u);

  for (std::size_t i = 1; i < kClients; ++i) {
    EXPECT_TRUE(stats[i].shutdown_received) << "client " << i;
    EXPECT_FALSE(stats[i].crashed) << "client " << i;
  }
}

}  // namespace
}  // namespace seafl
