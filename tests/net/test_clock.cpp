// Clock contract (DESIGN.md §13): VirtualClock mirrors the event queue's
// deterministic time; WallClock measures real elapsed time from its
// construction; VirtualTransport forwards to its queue bit-for-bit.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/transport.h"

namespace seafl::net {
namespace {

TEST(NetClock, VirtualClockTracksQueueTime) {
  EventQueue queue;
  VirtualClock clock(queue);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);

  queue.schedule_at(2.5, [] {});
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);  // scheduling does not advance time
  ASSERT_TRUE(queue.run_one());
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
}

TEST(NetClock, WallClockStartsNearZeroAndAdvances) {
  WallClock clock;
  const double start = clock.now();
  EXPECT_GE(start, 0.0);
  EXPECT_LT(start, 1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double later = clock.now();
  EXPECT_GE(later, start + 0.015);
}

TEST(NetClock, WallClockIsMonotonic) {
  WallClock clock;
  double prev = clock.now();
  for (int i = 0; i < 1000; ++i) {
    const double cur = clock.now();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(NetClock, VirtualTransportForwardsToQueue) {
  VirtualTransport transport;
  EXPECT_DOUBLE_EQ(transport.clock().now(), 0.0);

  int fired = 0;
  transport.schedule_at(1.0, [&] { ++fired; });
  const std::uint64_t cancelable =
      transport.schedule_after(2.0, [&] { fired += 100; });
  EXPECT_TRUE(transport.cancel(cancelable));
  EXPECT_FALSE(transport.cancel(cancelable));  // already canceled

  ASSERT_TRUE(transport.run_one());
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(transport.clock().now(), 1.0);
  // The canceled event is lazily discarded; the queue then reports empty.
  EXPECT_FALSE(transport.run_one());
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace seafl::net
