// Kill-and-resume chaos drill (DESIGN.md §15), in-process edition: a
// DeployServer halts abruptly mid-run (no Shutdown handshake — the
// controlled stand-in for SIGKILL), its clients ride out the outage on
// reconnect backoff, and a second server process resumes from the durable
// checkpoint on the same port. The run must complete every round, with the
// upload byte accounting exact across the crash.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/store.h"
#include "core/seafl.h"

namespace seafl {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kClients = 3;
constexpr std::uint64_t kTotalRounds = 4;
constexpr std::uint64_t kCrashAfter = 2;

FlTask small_task() {
  TaskSpec spec;
  spec.name = "synth-mnist";
  spec.num_clients = kClients;
  spec.samples_per_client = 24;
  spec.test_samples = 60;
  spec.seed = 7;
  return make_task(spec);
}

ExperimentParams small_params() {
  ExperimentParams params;
  params.buffer_size = 2;
  params.concurrency = 3;
  params.local_epochs = 1;
  params.batch_size = 8;
  params.max_rounds = kTotalRounds;
  params.stop_at_target = false;
  params.seed = 7;
  return params;
}

/// Clients must survive the window where no server is listening: many
/// reconnect attempts with a short, capped backoff.
void generous_client_retries(RunConfig& c) {
  c.faults.max_upload_retries = 30;
  c.faults.retry_backoff = 0.05;
  c.faults.retry_backoff_cap = 0.5;
}

TEST(ChaosResume, KilledServerResumesAndCompletesAllRounds) {
  const FlTask task = small_task();
  const ModelFactory model =
      make_model(task.default_model, task.input, task.num_classes);
  const std::string dir =
      (fs::temp_directory_path() / "seafl_chaos_resume_test").string();
  fs::remove_all(dir);

  std::array<DeployClientStats, kClients> stats;
  std::vector<std::thread> threads;
  std::uint16_t port = 0;
  RunResult res1;

  {
    // Leg 1: checkpoint every round, die abruptly after round kCrashAfter.
    Arm arm = make_arm("seafl", small_params());
    generous_client_retries(arm.config);
    arm.config.checkpoint_every_rounds = 1;
    arm.config.checkpoint_dir = dir;
    arm.config.halt_after_rounds = kCrashAfter;

    DeployServerOptions opts;
    opts.port = 0;
    opts.expected_clients = kClients;
    opts.max_wall_seconds = 60.0;
    DeployServer server(task, model, std::move(arm.strategy), arm.config,
                        opts);
    port = server.port();
    ASSERT_NE(port, 0);

    for (std::size_t i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        Arm carm = make_arm("seafl", small_params());
        generous_client_retries(carm.config);
        DeployClientOptions copt;
        copt.client_id = i;
        copt.port = port;
        DeployClient client(task, model, carm.config, copt);
        stats[i] = client.run();
      });
    }
    res1 = server.run();
    // Leaving the scope destroys the server: listen socket closed, every
    // client sees EOF and enters its reconnect loop — the SIGKILL analogue.
  }

  EXPECT_EQ(res1.rounds, kCrashAfter);
  const std::vector<std::uint64_t> rounds = ckpt::list_checkpoint_rounds(dir);
  ASSERT_FALSE(rounds.empty());
  EXPECT_EQ(rounds.back(), kCrashAfter);

  RunResult res2;
  {
    // Leg 2: same port, fresh process, resumed from the newest checkpoint.
    Arm arm = make_arm("seafl", small_params());
    generous_client_retries(arm.config);

    DeployServerOptions opts;
    opts.port = port;
    opts.expected_clients = kClients;
    opts.max_wall_seconds = 60.0;
    opts.resume_from = dir;
    DeployServer server(task, model, std::move(arm.strategy), arm.config,
                        opts);
    res2 = server.run();
  }
  for (std::thread& t : threads) t.join();

  // The resumed leg finishes the horizon; counters are cumulative across
  // the crash because the checkpoint carried RunResult itself.
  EXPECT_EQ(res2.rounds, kTotalRounds);
  EXPECT_GE(res2.model_uploads,
            static_cast<std::size_t>(kTotalRounds) * 2);  // K=2 per round
  EXPECT_GT(res2.final_time, 0.0);
  EXPECT_TRUE(std::isfinite(res2.final_accuracy));
  EXPECT_GE(res2.curve.size(), res1.curve.size());

  // Accounting survives the crash exactly: every accepted upload moved one
  // uncompressed model (stale pre-crash session uploads are rejected before
  // they touch the byte counters).
  const std::size_t dim = model()->num_parameters();
  EXPECT_EQ(res2.upload_wire_bytes,
            res2.model_uploads * compress::transfer_bytes(dim, 0));
  EXPECT_EQ(res2.upload_raw_bytes, res2.upload_wire_bytes);

  // Every client rode out the outage and saw the final graceful shutdown.
  for (std::size_t i = 0; i < kClients; ++i) {
    EXPECT_TRUE(stats[i].shutdown_received) << "client " << i;
    EXPECT_FALSE(stats[i].crashed) << "client " << i;
    EXPECT_GE(stats[i].dispatches, 1u) << "client " << i;
  }

  fs::remove_all(dir);
}

TEST(ChaosResume, ServerRejectsForeignOriginCheckpoint) {
  // A simulation-origin checkpoint must not restore into a deployment
  // server (its virtual-event sections are meaningless on a real transport).
  const FlTask task = small_task();
  const ModelFactory model =
      make_model(task.default_model, task.input, task.num_classes);
  const std::string dir =
      (fs::temp_directory_path() / "seafl_chaos_origin_test").string();
  fs::remove_all(dir);

  ckpt::RunCheckpoint c;
  c.seed = 7;
  c.model_dim = model()->num_parameters();
  c.num_clients = kClients;
  c.origin = 0;  // simulation
  c.round = 2;
  c.global.assign(static_cast<std::size_t>(c.model_dim), 0.0f);
  c.result.final_weights = c.global;
  ckpt::write_retained(dir, c, 3);

  Arm arm = make_arm("seafl", small_params());
  DeployServerOptions opts;
  opts.port = 0;
  opts.expected_clients = kClients;
  opts.resume_from = dir;
  EXPECT_THROW(DeployServer(task, model, std::move(arm.strategy), arm.config,
                            opts),
               Error);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace seafl
