// SocketTransport contract (DESIGN.md §13): real loopback TCP exchanged
// through the poll event loop — framing across partial reads/writes,
// disconnect reporting, malformed-input quarantine, wall-clock timers.
// Single-threaded: both endpoints live in the test and are pumped
// alternately, which is exactly the transport's documented driving model.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <initializer_list>
#include <memory>

#include "common/error.h"
#include "net/socket_transport.h"

namespace seafl::net {
namespace {

struct Recorder final : MessageHandler {
  std::vector<PeerId> connected;
  std::vector<PeerId> disconnected;
  std::vector<std::pair<PeerId, Message>> messages;

  void on_peer_connected(PeerId peer) override { connected.push_back(peer); }
  void on_message(PeerId peer, const Message& message) override {
    messages.emplace_back(peer, message);
  }
  void on_peer_disconnected(PeerId peer) override {
    disconnected.push_back(peer);
  }
};

/// Pumps every transport until `pred` holds or `timeout` wall seconds pass.
bool pump_until(std::initializer_list<SocketTransport*> transports,
                const std::function<bool()>& pred, double timeout = 5.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout));
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    for (SocketTransport* t : transports) t->run_one();
  }
  return true;
}

/// A connected (server, client) pair with recorders installed; the server
/// has accepted the client by the time the fixture returns.
struct Pair {
  std::unique_ptr<SocketTransport> server;
  std::unique_ptr<SocketTransport> client;
  Recorder server_events;
  Recorder client_events;
  PeerId client_on_server = 0;  ///< the client, as the server names it
  PeerId server_on_client = 0;  ///< the server, as the client names it
};

Pair make_pair_connected() {
  Pair p;
  SocketOptions fast;
  fast.max_poll_seconds = 0.01;
  p.server = SocketTransport::listen(0, fast);
  p.server->set_handler(&p.server_events);
  p.client = SocketTransport::connect("127.0.0.1", p.server->port(),
                                      /*timeout_seconds=*/5.0, fast);
  p.client->set_handler(&p.client_events);
  p.server_on_client = p.client->peers().front();
  EXPECT_TRUE(pump_until({p.server.get(), p.client.get()},
                         [&] { return !p.server_events.connected.empty(); }));
  p.client_on_server = p.server_events.connected.front();
  return p;
}

TEST(SocketTransport, ListenAssignsEphemeralPort) {
  const auto t = SocketTransport::listen(0);
  EXPECT_NE(t->port(), 0);
  EXPECT_EQ(t->peer_count(), 0u);
}

TEST(SocketTransport, ConnectToUnservedPortThrows) {
  std::uint16_t dead_port;
  {
    const auto t = SocketTransport::listen(0);
    dead_port = t->port();
  }  // listener gone; nobody serves dead_port now
  EXPECT_THROW(SocketTransport::connect("127.0.0.1", dead_port, 1.0), Error);
  EXPECT_THROW(SocketTransport::connect("not-an-ip", 1, 1.0), Error);
  EXPECT_THROW(SocketTransport::connect("127.0.0.1", 0, 1.0), Error);
}

TEST(SocketTransport, ExchangeMessagesBothWays) {
  Pair p = make_pair_connected();

  HelloMsg hello;
  hello.client = 7;
  hello.model_params = 1234;
  hello.seed = 42;
  EXPECT_TRUE(p.client->send(p.server_on_client, Message{hello}));
  ASSERT_TRUE(pump_until({p.server.get(), p.client.get()},
                         [&] { return !p.server_events.messages.empty(); }));
  const auto& [from, msg] = p.server_events.messages.front();
  EXPECT_EQ(from, p.client_on_server);
  ASSERT_TRUE(msg.is<HelloMsg>());
  EXPECT_EQ(msg.as<HelloMsg>().client, 7u);

  WelcomeMsg welcome;
  welcome.client = 7;
  EXPECT_TRUE(p.server->send(p.client_on_server, Message{welcome}));
  ASSERT_TRUE(pump_until({p.server.get(), p.client.get()},
                         [&] { return !p.client_events.messages.empty(); }));
  EXPECT_TRUE(p.client_events.messages.front().second.is<WelcomeMsg>());

  EXPECT_GE(p.server->stats().frames_received, 1u);
  EXPECT_GE(p.client->stats().frames_received, 1u);
}

TEST(SocketTransport, LargeFrameSurvivesPartialWrites) {
  Pair p = make_pair_connected();

  // ~1.6 MB of weights: far beyond a socket buffer, so the frame crosses
  // several POLLOUT flushes and several reassembling reads.
  DispatchMsg big;
  big.session = 1;
  big.weights.resize(400000);
  for (std::size_t i = 0; i < big.weights.size(); ++i)
    big.weights[i] = static_cast<float>(i % 1024) * 0.25f;
  ASSERT_TRUE(p.server->send(p.client_on_server, Message{big}));

  ASSERT_TRUE(pump_until({p.server.get(), p.client.get()},
                         [&] { return !p.client_events.messages.empty(); },
                         10.0));
  const Message& got = p.client_events.messages.front().second;
  ASSERT_TRUE(got.is<DispatchMsg>());
  EXPECT_EQ(got.as<DispatchMsg>().weights, big.weights);
}

TEST(SocketTransport, FlushDrainsQueuedBytes) {
  Pair p = make_pair_connected();
  DispatchMsg big;
  big.weights.assign(300000, 1.5f);
  ASSERT_TRUE(p.server->send(p.client_on_server, Message{big}));
  EXPECT_TRUE(p.server->flush(/*timeout_seconds=*/10.0));
  ASSERT_TRUE(pump_until({p.client.get()},
                         [&] { return !p.client_events.messages.empty(); },
                         10.0));
  EXPECT_EQ(p.client_events.messages.front().second.as<DispatchMsg>().weights,
            big.weights);
}

TEST(SocketTransport, SendToUnknownPeerReturnsFalse) {
  Pair p = make_pair_connected();
  EXPECT_FALSE(p.server->send(p.client_on_server + 1000, Message{NotifyMsg{}}));
}

TEST(SocketTransport, RemoteEofReportsDisconnect) {
  Pair p = make_pair_connected();
  p.client.reset();  // closes the socket: the server must see EOF
  ASSERT_TRUE(pump_until({p.server.get()}, [&] {
    return !p.server_events.disconnected.empty();
  }));
  EXPECT_EQ(p.server_events.disconnected.front(), p.client_on_server);
  EXPECT_EQ(p.server->peer_count(), 0u);
  EXPECT_FALSE(p.server->connected(p.client_on_server));
  EXPECT_EQ(p.server->stats().disconnects, 1u);
}

TEST(SocketTransport, LocalCloseDoesNotCallBack) {
  Pair p = make_pair_connected();
  p.server->close_peer(p.client_on_server);
  EXPECT_FALSE(p.server->connected(p.client_on_server));
  // The locally closing side gets no callback; the remote side sees EOF.
  ASSERT_TRUE(pump_until({p.server.get(), p.client.get()}, [&] {
    return !p.client_events.disconnected.empty();
  }));
  EXPECT_TRUE(p.server_events.disconnected.empty());
  EXPECT_EQ(p.client_events.disconnected.front(), p.server_on_client);
}

TEST(SocketTransport, MalformedFrameClosesOnlyThatPeer) {
  Pair p = make_pair_connected();

  // A raw byte-level client: 16 bytes that are not a SEAFL frame.
  const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(p.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_TRUE(pump_until({p.server.get()},
                         [&] { return p.server_events.connected.size() == 2; }));
  const PeerId bad_peer = p.server_events.connected.back();
  ASSERT_EQ(::send(raw, "GARBAGEGARBAGE!!", 16, 0), 16);

  ASSERT_TRUE(pump_until({p.server.get()}, [&] {
    return p.server->stats().protocol_errors >= 1;
  }));
  EXPECT_FALSE(p.server->connected(bad_peer));
  ASSERT_EQ(p.server_events.disconnected.size(), 1u);
  EXPECT_EQ(p.server_events.disconnected.front(), bad_peer);
  ::close(raw);

  // The well-behaved peer is unaffected and still served.
  EXPECT_TRUE(p.server->connected(p.client_on_server));
  EXPECT_TRUE(p.server->send(p.client_on_server, Message{NotifyMsg{5}}));
  ASSERT_TRUE(pump_until({p.server.get(), p.client.get()},
                         [&] { return !p.client_events.messages.empty(); }));
  EXPECT_TRUE(p.client_events.messages.front().second.is<NotifyMsg>());
}

TEST(SocketTransport, SplitHeaderAcrossWritesReassembles) {
  Pair p = make_pair_connected();
  const std::string frame = encode_frame(Message{CancelMsg{77}});

  const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(p.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // One byte at a time, pumping in between: the worst possible framing.
  for (char byte : frame) {
    ASSERT_EQ(::send(raw, &byte, 1, 0), 1);
    p.server->run_one();
  }
  ASSERT_TRUE(pump_until({p.server.get()},
                         [&] { return !p.server_events.messages.empty(); }));
  const Message& got = p.server_events.messages.front().second;
  ASSERT_TRUE(got.is<CancelMsg>());
  EXPECT_EQ(got.as<CancelMsg>().session, 77u);
  ::close(raw);
}

TEST(SocketTransport, WallTimersFireAndCancel) {
  SocketOptions fast;
  fast.max_poll_seconds = 0.01;
  const auto t = SocketTransport::listen(0, fast);

  bool fired = false;
  t->schedule_after(0.03, [&] { fired = true; });
  const std::uint64_t never = t->schedule_after(60.0, [&] { fired = false; });
  EXPECT_TRUE(t->cancel(never));

  ASSERT_TRUE(pump_until({t.get()}, [&] { return fired; }, 5.0));
  EXPECT_GE(t->clock().now(), 0.03);
  EXPECT_FALSE(t->cancel(never));  // canceled once already
}

TEST(SocketTransport, StopEndsRunLoop) {
  const auto t = SocketTransport::listen(0);
  t->schedule_after(0.0, [&] { t->stop(); });
  EXPECT_FALSE(t->run_one());  // timer fires first, stop() wins
  EXPECT_TRUE(t->stopped());
  EXPECT_FALSE(t->run_one());
}

}  // namespace
}  // namespace seafl::net
