// Wire-protocol contract (DESIGN.md §13): every message type survives an
// encode/decode round trip bit-for-bit, and decode_frame treats every
// malformed input — truncated, oversized, garbage, wrong version — as a
// status, never a crash or an over-read.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/wire.h"

namespace seafl::net {
namespace {

std::string make_header(std::uint32_t magic, std::uint16_t version,
                        std::uint16_t type, std::uint32_t payload_len) {
  std::string out;
  const auto put = [&out](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i)
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  put(magic, 4);
  put(version, 2);
  put(type, 2);
  put(payload_len, 4);
  return out;
}

Message round_trip(const Message& in) {
  const std::string bytes = encode_frame(in);
  EXPECT_GE(bytes.size(), kFrameHeaderBytes);
  const DecodeResult out = decode_frame(bytes.data(), bytes.size());
  EXPECT_EQ(out.status, DecodeStatus::kOk);
  EXPECT_EQ(out.consumed, bytes.size());
  return out.message;
}

TEST(Wire, HelloRoundTrip) {
  HelloMsg msg;
  msg.client = 7;
  msg.model_params = 123456;
  msg.seed = 0xDEADBEEFCAFEF00Dull;
  const Message out = round_trip(Message{msg});
  ASSERT_TRUE(out.is<HelloMsg>());
  EXPECT_EQ(out.type(), MsgType::kHello);
  EXPECT_EQ(out.as<HelloMsg>().client, 7u);
  EXPECT_EQ(out.as<HelloMsg>().model_params, 123456u);
  EXPECT_EQ(out.as<HelloMsg>().seed, 0xDEADBEEFCAFEF00Dull);
}

TEST(Wire, WelcomeRoundTrip) {
  WelcomeMsg msg;
  msg.client = 3;
  msg.round = 17;
  msg.clients_expected = 8;
  const Message out = round_trip(Message{msg});
  ASSERT_TRUE(out.is<WelcomeMsg>());
  EXPECT_EQ(out.type(), MsgType::kWelcome);
  EXPECT_EQ(out.as<WelcomeMsg>().client, 3u);
  EXPECT_EQ(out.as<WelcomeMsg>().round, 17u);
  EXPECT_EQ(out.as<WelcomeMsg>().clients_expected, 8u);
}

TEST(Wire, DispatchRoundTripPreservesWeightsBitwise) {
  DispatchMsg msg;
  msg.session = 99;
  msg.base_round = 5;
  msg.epochs = 4;
  msg.frozen_layers = 2;
  msg.weights = {1.5f, -2.25f, 0.0f, 1e-7f, -3.402823e38f};
  const Message out = round_trip(Message{msg});
  ASSERT_TRUE(out.is<DispatchMsg>());
  EXPECT_EQ(out.type(), MsgType::kDispatch);
  const DispatchMsg& d = out.as<DispatchMsg>();
  EXPECT_EQ(d.session, 99u);
  EXPECT_EQ(d.base_round, 5u);
  EXPECT_EQ(d.epochs, 4u);
  EXPECT_EQ(d.frozen_layers, 2u);
  ASSERT_EQ(d.weights.size(), msg.weights.size());
  for (std::size_t i = 0; i < d.weights.size(); ++i) {
    EXPECT_EQ(std::memcmp(&d.weights[i], &msg.weights[i], sizeof(float)), 0)
        << "weight " << i;
  }
}

TEST(Wire, NotifyAndCancelRoundTrip) {
  {
    NotifyMsg msg;
    msg.session = 42;
    const Message out = round_trip(Message{msg});
    ASSERT_TRUE(out.is<NotifyMsg>());
    EXPECT_EQ(out.type(), MsgType::kNotify);
    EXPECT_EQ(out.as<NotifyMsg>().session, 42u);
  }
  {
    CancelMsg msg;
    msg.session = 43;
    const Message out = round_trip(Message{msg});
    ASSERT_TRUE(out.is<CancelMsg>());
    EXPECT_EQ(out.type(), MsgType::kCancel);
    EXPECT_EQ(out.as<CancelMsg>().session, 43u);
  }
}

TEST(Wire, UploadRoundTrip) {
  UploadMsg msg;
  msg.session = 11;
  msg.client = 2;
  msg.base_round = 9;
  msg.num_samples = 64;
  msg.epochs_completed = 3;
  msg.attempt = 2;
  msg.train_loss = 0.321;
  msg.weights = {0.5f, 1.25f, -9.75f};
  const Message out = round_trip(Message{msg});
  ASSERT_TRUE(out.is<UploadMsg>());
  EXPECT_EQ(out.type(), MsgType::kUpload);
  const UploadMsg& u = out.as<UploadMsg>();
  EXPECT_EQ(u.session, 11u);
  EXPECT_EQ(u.client, 2u);
  EXPECT_EQ(u.base_round, 9u);
  EXPECT_EQ(u.num_samples, 64u);
  EXPECT_EQ(u.epochs_completed, 3u);
  EXPECT_EQ(u.attempt, 2u);
  EXPECT_DOUBLE_EQ(u.train_loss, 0.321);
  EXPECT_EQ(u.weights, msg.weights);
}

TEST(Wire, CompressedUploadRoundTrip) {
  CompressedUploadMsg msg;
  msg.session = 21;
  msg.client = 4;
  msg.base_round = 8;
  msg.num_samples = 50;
  msg.epochs_completed = 2;
  msg.attempt = 3;
  msg.train_loss = 1.75;
  msg.update.codec = compress::CodecKind::kQuantize;
  msg.update.bits = 8;
  msg.update.dim = 6;
  msg.update.k = 6;
  msg.update.scale = 0.125f;
  msg.update.payload = std::string("\x00\x7f\x01\xfe\x40\x80", 6);
  const Message out = round_trip(Message{msg});
  ASSERT_TRUE(out.is<CompressedUploadMsg>());
  EXPECT_EQ(out.type(), MsgType::kCompressedUpload);
  const CompressedUploadMsg& u = out.as<CompressedUploadMsg>();
  EXPECT_EQ(u.session, 21u);
  EXPECT_EQ(u.client, 4u);
  EXPECT_EQ(u.base_round, 8u);
  EXPECT_EQ(u.num_samples, 50u);
  EXPECT_EQ(u.epochs_completed, 2u);
  EXPECT_EQ(u.attempt, 3u);
  EXPECT_DOUBLE_EQ(u.train_loss, 1.75);
  EXPECT_EQ(u.update.codec, msg.update.codec);
  EXPECT_EQ(u.update.bits, msg.update.bits);
  EXPECT_EQ(u.update.dim, msg.update.dim);
  EXPECT_EQ(u.update.k, msg.update.k);
  EXPECT_EQ(u.update.scale, msg.update.scale);
  EXPECT_EQ(u.update.payload, msg.update.payload);
}

TEST(Wire, CompressedUploadCorruptContainerIsMalformed) {
  CompressedUploadMsg msg;
  msg.update.codec = compress::CodecKind::kTopK;
  msg.update.bits = 32;
  msg.update.dim = 4;
  msg.update.k = 1;
  msg.update.payload = std::string(8, '\x01');
  std::string frame = encode_frame(Message{msg});
  // Corrupt the SEAFLCMP magic inside the embedded container: the frame
  // header still parses, but the payload must report malformed, not throw.
  const std::size_t container_at = frame.size() - msg.update.encoded_bytes();
  frame[container_at] = 'X';
  EXPECT_EQ(decode_frame(frame.data(), frame.size()).status,
            DecodeStatus::kMalformed);
}

TEST(Wire, EvalAndShutdownRoundTrip) {
  {
    EvalMsg msg;
    msg.round = 6;
    msg.accuracy = 0.87;
    msg.loss = 0.42;
    const Message out = round_trip(Message{msg});
    ASSERT_TRUE(out.is<EvalMsg>());
    EXPECT_EQ(out.type(), MsgType::kEval);
    EXPECT_EQ(out.as<EvalMsg>().round, 6u);
    EXPECT_DOUBLE_EQ(out.as<EvalMsg>().accuracy, 0.87);
    EXPECT_DOUBLE_EQ(out.as<EvalMsg>().loss, 0.42);
  }
  {
    ShutdownMsg msg;
    msg.rounds = 100;
    msg.final_accuracy = 0.93;
    const Message out = round_trip(Message{msg});
    ASSERT_TRUE(out.is<ShutdownMsg>());
    EXPECT_EQ(out.type(), MsgType::kShutdown);
    EXPECT_EQ(out.as<ShutdownMsg>().rounds, 100u);
    EXPECT_DOUBLE_EQ(out.as<ShutdownMsg>().final_accuracy, 0.93);
  }
}

TEST(Wire, MsgTypeNamesAreStable) {
  EXPECT_STREQ(msg_type_name(MsgType::kHello), "hello");
  EXPECT_STREQ(msg_type_name(MsgType::kWelcome), "welcome");
  EXPECT_STREQ(msg_type_name(MsgType::kDispatch), "dispatch");
  EXPECT_STREQ(msg_type_name(MsgType::kNotify), "notify");
  EXPECT_STREQ(msg_type_name(MsgType::kCancel), "cancel");
  EXPECT_STREQ(msg_type_name(MsgType::kUpload), "upload");
  EXPECT_STREQ(msg_type_name(MsgType::kEval), "eval");
  EXPECT_STREQ(msg_type_name(MsgType::kShutdown), "shutdown");
  EXPECT_STREQ(msg_type_name(MsgType::kCompressedUpload), "compressed_upload");
}

TEST(Wire, EmptyAndTruncatedHeaderNeedMoreData) {
  EXPECT_EQ(decode_frame(nullptr, 0).status, DecodeStatus::kNeedMoreData);

  const std::string frame = encode_frame(Message{NotifyMsg{42}});
  for (std::size_t len = 1; len < kFrameHeaderBytes; ++len) {
    const DecodeResult r = decode_frame(frame.data(), len);
    EXPECT_EQ(r.status, DecodeStatus::kNeedMoreData) << "prefix " << len;
    EXPECT_EQ(r.consumed, 0u);
  }
}

TEST(Wire, IncrementalFeedDecodesOnlyWhenComplete) {
  UploadMsg msg;
  msg.session = 5;
  msg.weights = {1.0f, 2.0f, 3.0f};
  const std::string frame = encode_frame(Message{msg});
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_EQ(decode_frame(frame.data(), len).status,
              DecodeStatus::kNeedMoreData)
        << "prefix " << len;
  }
  EXPECT_EQ(decode_frame(frame.data(), frame.size()).status,
            DecodeStatus::kOk);
}

TEST(Wire, MalformedHeaderTable) {
  struct Case {
    const char* name;
    std::uint32_t magic;
    std::uint16_t version;
    std::uint16_t type;
    std::uint32_t payload_len;
    DecodeStatus expected;
  };
  const Case cases[] = {
      {"bad magic", 0x12345678u, kWireVersion, 4, 0, DecodeStatus::kBadMagic},
      {"zero magic", 0u, kWireVersion, 4, 0, DecodeStatus::kBadMagic},
      {"future version", kWireMagic, 2, 4, 0, DecodeStatus::kBadVersion},
      {"version zero", kWireMagic, 0, 4, 0, DecodeStatus::kBadVersion},
      {"type zero", kWireMagic, kWireVersion, 0, 0, DecodeStatus::kBadType},
      {"type past compressed upload", kWireMagic, kWireVersion, 10, 0,
       DecodeStatus::kBadType},
      {"type max", kWireMagic, kWireVersion, 0xFFFF, 0,
       DecodeStatus::kBadType},
      {"oversized payload", kWireMagic, kWireVersion, 3,
       kMaxFramePayload + 1, DecodeStatus::kOversized},
  };
  for (const Case& c : cases) {
    const std::string header =
        make_header(c.magic, c.version, c.type, c.payload_len);
    const DecodeResult r = decode_frame(header.data(), header.size());
    EXPECT_EQ(r.status, c.expected) << c.name;
    EXPECT_TRUE(is_fatal(r.status)) << c.name;
  }
}

TEST(Wire, GarbagePayloadIsMalformedNotACrash) {
  // A notify payload is one u64; a sized-but-short payload must not parse.
  std::string frame =
      make_header(kWireMagic, kWireVersion,
                  static_cast<std::uint16_t>(MsgType::kNotify), 4);
  frame += std::string(4, '\x7f');
  EXPECT_EQ(decode_frame(frame.data(), frame.size()).status,
            DecodeStatus::kMalformed);

  // A dispatch payload full of 0xFF cannot be a valid model container.
  std::string garbage =
      make_header(kWireMagic, kWireVersion,
                  static_cast<std::uint16_t>(MsgType::kDispatch), 64);
  garbage += std::string(64, '\xff');
  EXPECT_EQ(decode_frame(garbage.data(), garbage.size()).status,
            DecodeStatus::kMalformed);
}

TEST(Wire, TrailingPayloadBytesAreMalformed) {
  // Take a valid notify frame and claim 8 extra payload bytes: the payload
  // parses but does not consume its declared length — reject it.
  const std::string valid = encode_frame(Message{NotifyMsg{42}});
  const std::size_t payload_len = valid.size() - kFrameHeaderBytes;
  std::string padded =
      make_header(kWireMagic, kWireVersion,
                  static_cast<std::uint16_t>(MsgType::kNotify),
                  static_cast<std::uint32_t>(payload_len + 8));
  padded += valid.substr(kFrameHeaderBytes);
  padded += std::string(8, '\0');
  EXPECT_EQ(decode_frame(padded.data(), padded.size()).status,
            DecodeStatus::kMalformed);
}

TEST(Wire, TruncatedPayloadNeedsMoreDataThenDecodes) {
  EvalMsg msg;
  msg.round = 3;
  msg.accuracy = 0.5;
  const std::string frame = encode_frame(Message{msg});
  const DecodeResult partial =
      decode_frame(frame.data(), frame.size() - 1);
  EXPECT_EQ(partial.status, DecodeStatus::kNeedMoreData);
  const DecodeResult full = decode_frame(frame.data(), frame.size());
  EXPECT_EQ(full.status, DecodeStatus::kOk);
  EXPECT_EQ(full.consumed, frame.size());
}

TEST(Wire, ConcatenatedFramesDecodeSequentially) {
  const std::string a = encode_frame(Message{NotifyMsg{1}});
  const std::string b = encode_frame(Message{CancelMsg{2}});
  const std::string both = a + b;

  const DecodeResult first = decode_frame(both.data(), both.size());
  ASSERT_EQ(first.status, DecodeStatus::kOk);
  EXPECT_EQ(first.consumed, a.size());
  ASSERT_TRUE(first.message.is<NotifyMsg>());

  const DecodeResult second = decode_frame(both.data() + first.consumed,
                                           both.size() - first.consumed);
  ASSERT_EQ(second.status, DecodeStatus::kOk);
  EXPECT_EQ(second.consumed, b.size());
  ASSERT_TRUE(second.message.is<CancelMsg>());
  EXPECT_EQ(second.message.as<CancelMsg>().session, 2u);
}

TEST(Wire, IsFatalClassification) {
  EXPECT_FALSE(is_fatal(DecodeStatus::kOk));
  EXPECT_FALSE(is_fatal(DecodeStatus::kNeedMoreData));
  EXPECT_TRUE(is_fatal(DecodeStatus::kBadMagic));
  EXPECT_TRUE(is_fatal(DecodeStatus::kBadVersion));
  EXPECT_TRUE(is_fatal(DecodeStatus::kBadType));
  EXPECT_TRUE(is_fatal(DecodeStatus::kOversized));
  EXPECT_TRUE(is_fatal(DecodeStatus::kMalformed));
}

TEST(Wire, RandomBytesNeverCrashTheDecoder) {
  // Deterministic pseudo-garbage: xorshift over a fixed seed. Every prefix
  // of every buffer must return a status without reading out of bounds.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 50; ++round) {
    std::string buf(64, '\0');
    for (auto& c : buf) c = static_cast<char>(next() & 0xff);
    for (std::size_t len = 0; len <= buf.size(); ++len) {
      const DecodeResult r = decode_frame(buf.data(), len);
      if (r.status == DecodeStatus::kOk) {
        EXPECT_LE(r.consumed, len);
      }
    }
  }
}

}  // namespace
}  // namespace seafl::net
